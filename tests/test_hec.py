"""Heavy Edge Coarsening: Algorithms 3 and 4."""

import numpy as np
import pytest

from repro.coarsen import (
    classify_heavy_edges,
    coarsen_multilevel,
    heavy_neighbors,
    hec_parallel,
    hec_serial,
    mapping_quality,
    validate_mapping,
)
from repro.csr import from_edge_list
from repro.parallel import cpu_space, gpu_space, serial_space

from tests.conftest import grid_graph, random_connected, ring_graph, star_graph


class TestHeavyNeighbors:
    def test_unweighted_picks_first(self, ring8):
        h = heavy_neighbors(ring8)
        # rows are sorted, equal weights: first adjacency entry wins
        assert h[3] == 2
        assert h[0] == 1

    def test_weighted_picks_heaviest(self):
        g = from_edge_list(3, [0, 0], [1, 2], [1.0, 9.0])
        h = heavy_neighbors(g)
        assert h[0] == 2
        assert h[1] == 0
        assert h[2] == 0

    def test_isolated_gets_sentinel(self):
        g = from_edge_list(3, [0], [1])
        assert heavy_neighbors(g)[2] == -1

    def test_ties_resolve_to_lowest_id(self):
        g = from_edge_list(4, [1, 1, 1], [0, 2, 3], [5.0, 5.0, 5.0])
        assert heavy_neighbors(g)[1] == 0

    def test_charges_cost(self, rc100):
        sp = gpu_space(0)
        heavy_neighbors(rc100, sp)
        assert sp.ledger.phase("mapping").stream_bytes > 0


class TestSerialHEC:
    def test_valid_mapping(self, rc100):
        mp = hec_serial(rc100, serial_space(0))
        validate_mapping(mp)

    def test_star_collapses(self, star10):
        mp = hec_serial(star10, serial_space(0))
        # every leaf's heavy neighbour is the hub: one aggregate
        assert mp.n_c == 1

    def test_heavy_edges_contracted(self):
        # two heavy pairs joined by light edges must contract pairwise
        g = from_edge_list(4, [0, 1, 2], [1, 2, 3], [10.0, 1.0, 10.0])
        mp = hec_serial(g, serial_space(1))
        assert mp.m[0] == mp.m[1]
        assert mp.m[2] == mp.m[3]
        assert mp.n_c == 2

    def test_isolated_vertices_singletons(self):
        g = from_edge_list(4, [0], [1])
        mp = hec_serial(g, serial_space(0))
        validate_mapping(mp)
        assert mp.m[2] != mp.m[3]


class TestParallelHEC:
    def test_serial_equivalence_wave1(self):
        """Under wave size 1 the parallel kernel IS Algorithm 3."""
        for seed in range(5):
            g = random_connected(120, 200, seed=seed)
            a = hec_serial(g, serial_space(seed))
            b = hec_parallel(g, serial_space(seed))
            assert np.array_equal(a.m, b.m)
            assert a.n_c == b.n_c

    @pytest.mark.parametrize("space_fn", [gpu_space, cpu_space])
    def test_valid_on_random(self, space_fn, rc400):
        mp = hec_parallel(rc400, space_fn(2))
        validate_mapping(mp)
        assert 1 < mp.n_c < rc400.n

    def test_deterministic_per_seed(self, rc100):
        a = hec_parallel(rc100, gpu_space(4))
        b = hec_parallel(rc100, gpu_space(4))
        assert np.array_equal(a.m, b.m)

    def test_most_resolve_in_two_passes(self, rc400):
        """Paper Section IV-A: 99.4% of vertices resolve within 2 passes."""
        mp = hec_parallel(rc400, gpu_space(0))
        rpp = mp.stats["resolved_per_pass"]
        assert sum(rpp[:2]) / sum(rpp) > 0.95

    def test_grid_coarsens(self, grid6):
        mp = hec_parallel(grid6, gpu_space(1))
        validate_mapping(mp)
        assert mp.n_c < grid6.n
        assert mp.coarsening_ratio() > 1.5

    def test_mutual_pairs_contract(self):
        # two mutual heavy pairs joined by a light edge: in every visit
        # order each pair must contract (no third vertex can steal an
        # endpoint, since both pairs are each other's heavy neighbours)
        g = from_edge_list(4, [0, 2, 1], [1, 3, 2], [9.0, 9.0, 1.0])
        for seed in range(6):
            mp = hec_parallel(g, gpu_space(seed))
            assert mp.m[0] == mp.m[1]
            assert mp.m[2] == mp.m[3]
            assert mp.n_c == 2

    def test_disconnected_isolated(self):
        g = from_edge_list(5, [0], [1])
        mp = hec_parallel(g, gpu_space(0))
        validate_mapping(mp)
        # 2,3,4 isolated: distinct singletons
        assert len({int(mp.m[2]), int(mp.m[3]), int(mp.m[4])}) == 3

    def test_contracted_weight_dominates_random(self, rc400):
        """HEC must contract heavier-than-average edges."""
        mp = hec_parallel(rc400, gpu_space(3))
        q = mapping_quality(rc400, mp)
        src, dst, w = rc400.to_coo()
        # average weight of contracted edges >= global average weight
        intra_mask = mp.m[src] == mp.m[dst]
        assert w[intra_mask].mean() >= w.mean()


class TestClassifyHeavyEdges:
    def test_counts_partition_processed_vertices(self, rc100):
        out = classify_heavy_edges(rc100, serial_space(0))
        counts = out["counts"]
        assert counts["create"] + counts["inherit"] + counts["skip"] == rc100.n

    def test_creates_match_aggregates(self, rc100):
        out = classify_heavy_edges(rc100, serial_space(0))
        assert out["counts"]["create"] == out["mapping"].n_c

    def test_pseudoforest_outdegree_one(self, rc100):
        digraph = out = classify_heavy_edges(rc100, serial_space(0))["heavy_digraph"]
        sources = [u for u, _ in digraph]
        assert len(sources) == len(set(sources)) == rc100.n
