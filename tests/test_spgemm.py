"""SpGEMM kernel: vs reference, vs scipy, and the P A P^T construction."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.construct import (
    CSRMatrix,
    aggregation_matrix,
    spgemm,
    spgemm_rowwise_reference,
    transpose,
)
from repro.parallel import gpu_space
from repro.types import VI, WT


def _random_csr(rng, rows, cols, density=0.1):
    mat = sp.random(rows, cols, density=density, random_state=np.random.RandomState(rng), format="csr")
    mat.data = np.abs(mat.data) + 0.1
    return CSRMatrix(mat.indptr, mat.indices, mat.data, cols), mat


def _to_scipy(c: CSRMatrix):
    return sp.csr_array((c.vals, c.adjncy, c.xadj), shape=(c.n_rows, c.n_cols))


class TestSpgemm:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_scipy(self, seed):
        a, sa = _random_csr(seed, 30, 40)
        b, sb = _random_csr(seed + 10, 40, 25)
        c = spgemm(a, b)
        expect = (sa @ sb).toarray()
        assert np.allclose(_to_scipy(c).toarray(), expect)

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_rowwise_reference(self, seed):
        a, _ = _random_csr(seed, 20, 20, density=0.2)
        b, _ = _random_csr(seed + 5, 20, 20, density=0.2)
        c = spgemm(a, b)
        r = spgemm_rowwise_reference(a, b)
        assert np.array_equal(c.xadj, r.xadj)
        assert np.array_equal(c.adjncy, r.adjncy)
        assert np.allclose(c.vals, r.vals)

    def test_identity(self):
        n = 10
        eye = CSRMatrix(np.arange(n + 1), np.arange(n), np.ones(n), n)
        a, sa = _random_csr(1, n, n)
        c = spgemm(eye, a)
        assert np.allclose(_to_scipy(c).toarray(), sa.toarray())

    def test_dimension_mismatch(self):
        a, _ = _random_csr(0, 5, 6)
        b, _ = _random_csr(1, 5, 6)
        with pytest.raises(ValueError, match="dimension"):
            spgemm(a, b)

    def test_empty_product(self):
        z = CSRMatrix(np.zeros(6, dtype=VI), np.zeros(0, dtype=VI), np.zeros(0, dtype=WT), 5)
        c = spgemm(z, z)
        assert c.nnz == 0

    def test_duplicate_columns_summed(self):
        # A row [1, 1] times B with rows [1@0] and [1@0]: C[0,0] = 2
        a = CSRMatrix([0, 2], [0, 1], [1.0, 1.0], 2)
        b = CSRMatrix([0, 1, 2], [0, 0], [1.0, 1.0], 1)
        c = spgemm(a, b)
        assert c.nnz == 1
        assert c.vals[0] == 2.0

    def test_cost_charged(self):
        a, _ = _random_csr(2, 30, 30)
        space = gpu_space(0)
        spgemm(a, a, space)
        cost = space.ledger.phase("construction")
        assert cost.hash_ops > 0 and cost.flops > 0


class TestTranspose:
    def test_vs_scipy(self):
        a, sa = _random_csr(3, 20, 35)
        t = transpose(a)
        assert np.allclose(_to_scipy(t).toarray(), sa.T.toarray())

    def test_double_transpose(self):
        a, _ = _random_csr(4, 15, 15)
        tt = transpose(transpose(a))
        assert np.array_equal(tt.xadj, a.xadj)
        assert np.allclose(tt.vals, a.vals)


class TestAggregationMatrix:
    def test_shape_and_content(self):
        from repro.coarsen import CoarseMapping

        mp = CoarseMapping(np.array([1, 0, 1, 0, 2]), 3)
        p = aggregation_matrix(mp)
        assert p.n_rows == 3
        assert p.n_cols == 5
        assert p.nnz == 5
        dense = _to_scipy(p).toarray()
        for u, c in enumerate(mp.m):
            assert dense[c, u] == 1.0
