"""k-way recursive bisection, spectral drawing/clustering (Section III-C)."""

import numpy as np
import pytest

from repro.parallel import gpu_space
from repro.partition import (
    conductance,
    edge_cut,
    partition_weights,
    recursive_bisection,
    spectral_coordinates,
    spectral_sweep_cut,
)

from tests.conftest import grid_graph, path_graph, random_connected, two_triangles


class TestRecursiveBisection:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 7, 8])
    def test_k_parts_assigned(self, k):
        g = random_connected(300, 450, seed=1)
        part = recursive_bisection(g, k, gpu_space(0))
        assert set(np.unique(part).tolist()) == set(range(k))

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_balance_power_of_two(self, k):
        g = grid_graph(16, 16)
        part = recursive_bisection(g, k, gpu_space(1))
        w = np.bincount(part, minlength=k)
        assert w.max() <= 1.25 * g.n / k

    def test_k3_proportional(self):
        g = grid_graph(15, 15)
        part = recursive_bisection(g, 3, gpu_space(2))
        w = np.bincount(part, minlength=3)
        assert w.max() <= 1.35 * g.n / 3

    def test_k1_trivial(self):
        g = path_graph(10)
        part = recursive_bisection(g, 1, gpu_space(0))
        assert np.all(part == 0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            recursive_bisection(path_graph(4), 0, gpu_space(0))

    def test_kway_cut_reasonable_on_grid(self):
        g = grid_graph(16, 16)
        part4 = recursive_bisection(g, 4, gpu_space(3))
        src = g.edge_sources()
        cut = float(g.ewgts[part4[src] != part4[g.adjncy]].sum()) / 2.0
        assert cut <= 4 * 16 * 2  # quadrant cut is 32; allow 4x


class TestSpectralDrawing:
    def test_coordinates_shape_and_orthogonality(self):
        g = grid_graph(10, 10)
        xy = spectral_coordinates(g, gpu_space(0))
        assert xy.shape == (100, 2)
        assert abs(np.dot(xy[:, 0], xy[:, 1])) < 1e-2
        assert abs(xy[:, 0].sum()) < 1e-6  # both orthogonal to constant
        assert abs(xy[:, 1].sum()) < 1e-6

    def test_path_layout_orders_vertices(self):
        g = path_graph(24)
        xy = spectral_coordinates(g, gpu_space(1))
        d = np.diff(xy[:, 0])
        assert np.all(d > 0) or np.all(d < 0)

    def test_empty_graph(self):
        from repro.csr import from_edge_list

        xy = spectral_coordinates(from_edge_list(0, [], []), gpu_space(0))
        assert xy.shape == (0, 2)


class TestSweepCut:
    def test_two_triangles_finds_bridge(self):
        g = two_triangles()
        mask, phi = spectral_sweep_cut(g, gpu_space(0), max_iters=2000)
        assert mask.sum() == 3
        assert phi == pytest.approx(1.0 / 7.0)

    def test_conductance_definition(self):
        g = two_triangles()
        mask = np.array([True, True, True, False, False, False])
        # cut = 1, vol(S) = 7 (2+2+3)
        assert conductance(g, mask) == pytest.approx(1.0 / 7.0)

    def test_conductance_degenerate(self):
        g = path_graph(4)
        assert conductance(g, np.zeros(4, dtype=bool)) == 1.0

    def test_sweep_allows_imbalance(self):
        # lollipop: dense blob + long path; sweep should cut the path
        from repro.csr import from_edge_list

        blob = [(i, j) for i in range(8) for j in range(i + 1, 8)]
        tail = [(7 + i, 8 + i) for i in range(12)]
        src, dst = zip(*(blob + tail))
        g = from_edge_list(20, src, dst)
        mask, phi = spectral_sweep_cut(g, gpu_space(3), max_iters=3000)
        sizes = (mask.sum(), (~mask).sum())
        assert min(sizes) > 0
        assert phi < 0.2  # far better than any balanced cut's conductance
