"""CSRGraph container behaviour."""

import numpy as np
import pytest

from repro.csr import CSRGraph, from_edge_list
from repro.types import VI, WT

from tests.conftest import grid_graph, ring_graph, star_graph


class TestBasicAccessors:
    def test_sizes(self, ring8):
        assert ring8.n == 8
        assert ring8.m == 8
        assert ring8.m_directed == 16
        assert ring8.size_measure == 24

    def test_neighbors_sorted(self, ring8):
        assert list(ring8.neighbors(0)) == [1, 7]
        assert list(ring8.neighbors(3)) == [2, 4]

    def test_neighbors_is_view(self, ring8):
        nbrs = ring8.neighbors(0)
        assert nbrs.base is ring8.adjncy

    def test_degree(self, star10):
        assert star10.degree(0) == 10
        assert star10.degree(5) == 1

    def test_degrees_match_scalar(self, grid6):
        degs = grid6.degrees()
        for u in range(grid6.n):
            assert degs[u] == grid6.degree(u)

    def test_edge_weights_default_one(self, ring8):
        assert np.all(ring8.ewgts == 1.0)
        assert np.all(ring8.vwgts == 1.0)

    def test_arrays_readonly(self, ring8):
        with pytest.raises(ValueError):
            ring8.xadj[0] = 5
        with pytest.raises(ValueError):
            ring8.ewgts[0] = 5.0

    def test_dtypes(self, ring8):
        assert ring8.xadj.dtype == VI
        assert ring8.adjncy.dtype == VI
        assert ring8.ewgts.dtype == WT
        assert ring8.vwgts.dtype == WT


class TestDerived:
    def test_edge_sources(self, ring8):
        src = ring8.edge_sources()
        assert len(src) == ring8.m_directed
        # each vertex of a ring contributes exactly 2 entries
        assert np.all(np.bincount(src) == 2)

    def test_weighted_degrees(self):
        g = from_edge_list(3, [0, 1], [1, 2], [2.0, 3.0])
        assert list(g.weighted_degrees()) == [2.0, 5.0, 3.0]

    def test_max_avg_degree(self, star10):
        assert star10.max_degree() == 10
        assert star10.avg_degree() == pytest.approx(20 / 11)

    def test_degree_skew_star(self, star10):
        assert star10.degree_skew() == pytest.approx(10 / (20 / 11))

    def test_degree_skew_regular(self, ring8):
        assert ring8.degree_skew() == pytest.approx(1.0)

    def test_total_edge_weight(self):
        g = from_edge_list(3, [0, 1], [1, 2], [2.0, 3.0])
        assert g.total_edge_weight() == 5.0

    def test_total_vertex_weight(self, grid6):
        assert grid6.total_vertex_weight() == 36.0

    def test_empty_graph(self):
        from repro.csr import empty

        g = empty(4)
        assert g.n == 4
        assert g.m == 0
        assert g.avg_degree() == 0.0
        assert g.degree_skew() == 0.0
        assert g.max_degree() == 0


class TestConversions:
    def test_to_coo_roundtrip(self, grid6):
        src, dst, w = grid6.to_coo()
        g2 = from_edge_list(grid6.n, src, dst, w, symmetrize=False)
        assert np.array_equal(g2.xadj, grid6.xadj)
        assert np.array_equal(g2.adjncy, grid6.adjncy)
        assert np.allclose(g2.ewgts, grid6.ewgts)

    def test_to_scipy(self, ring8):
        mat = ring8.to_scipy()
        assert mat.shape == (8, 8)
        assert mat.nnz == 16
        dense = mat.toarray()
        assert np.allclose(dense, dense.T)

    def test_with_name(self, ring8):
        g = ring8.with_name("renamed")
        assert g.name == "renamed"
        assert g.n == ring8.n
        assert ring8.name == "ring8"


class TestSharedMemory:
    def test_round_trip(self, grid6):
        desc, shm = grid6.to_shared()
        try:
            g2 = CSRGraph.from_shared(desc)
            assert g2.name == grid6.name
            assert np.array_equal(g2.xadj, grid6.xadj)
            assert np.array_equal(g2.adjncy, grid6.adjncy)
            assert np.array_equal(g2.ewgts, grid6.ewgts)
            assert np.array_equal(g2.vwgts, grid6.vwgts)
            assert g2.xadj.dtype == VI and g2.ewgts.dtype == WT
        finally:
            shm.close()
            shm.unlink()

    def test_descriptor_is_picklable_metadata(self, ring8):
        import pickle

        desc, shm = ring8.to_shared()
        try:
            assert desc["nbytes"] == sum(
                f["count"] * np.dtype(f["dtype"]).itemsize for f in desc["layout"]
            )
            assert [f["field"] for f in desc["layout"]] == [
                "xadj", "adjncy", "ewgts", "vwgts",
            ]
            assert pickle.loads(pickle.dumps(desc)) == desc
        finally:
            shm.close()
            shm.unlink()

    def test_mapping_is_zero_copy_and_readonly(self, ring8):
        desc, shm = ring8.to_shared()
        try:
            g2 = CSRGraph.from_shared(desc)
            assert not g2.adjncy.flags.writeable
            with pytest.raises(ValueError):
                g2.adjncy[0] = 99
            # a write through the publisher's buffer is visible in the
            # mapped view: the worker copy never materialised
            publisher_view = np.frombuffer(
                shm.buf, dtype=VI, count=desc["layout"][1]["count"],
                offset=desc["layout"][1]["offset"],
            )
            old = int(g2.adjncy[0])
            publisher_view[0] = old + 41
            assert int(g2.adjncy[0]) == old + 41
            publisher_view[0] = old
            del publisher_view  # release the buffer export so close() works
        finally:
            shm.close()
            shm.unlink()

    def test_mapped_graph_survives_publisher_unlink(self, grid6):
        desc, shm = grid6.to_shared()
        g2 = CSRGraph.from_shared(desc)
        shm.close()
        shm.unlink()
        # the attachment handle kept on the instance pins the block
        assert int(g2.xadj[-1]) == grid6.m_directed
        assert g2.degrees().sum() == grid6.m_directed
