"""Suitor matching, ACE weighted aggregation, heap dedup (Section V extras)."""

import numpy as np
import pytest

from repro.coarsen import (
    ace_coarsen,
    ace_interpolation,
    ace_select_representatives,
    is_matching,
    suitor_coarsen,
    suitor_matching,
    validate_mapping,
)
from repro.csr import from_edge_list, validate
from repro.parallel import gpu_space

from tests.conftest import grid_graph, random_connected, star_graph


class TestSuitor:
    def test_is_matching(self, rc400):
        mp = suitor_coarsen(rc400, gpu_space(0))
        validate_mapping(mp)
        assert is_matching(mp)

    def test_deterministic_regardless_of_seed(self, rc100):
        a = suitor_coarsen(rc100, gpu_space(0))
        b = suitor_coarsen(rc100, gpu_space(99))
        assert np.array_equal(a.m, b.m)

    def test_mutual_suitors_on_heavy_pair(self):
        g = from_edge_list(4, [0, 1, 2], [1, 2, 3], [10.0, 1.0, 10.0])
        s = suitor_matching(g)
        assert s[0] == 1 and s[1] == 0
        assert s[2] == 3 and s[3] == 2
        mp = suitor_coarsen(g, gpu_space(0))
        assert mp.m[0] == mp.m[1]
        assert mp.m[2] == mp.m[3]

    def test_half_approximation_weight(self):
        """Suitor's matched weight is >= half the maximum matching weight."""
        import networkx as nx

        g = random_connected(60, 90, seed=4)
        mp = suitor_coarsen(g, gpu_space(0))
        src, dst, w = g.to_coo()
        matched_w = w[(mp.m[src] == mp.m[dst])].sum() / 2.0
        nxg = nx.Graph()
        for a, b, wt in zip(src.tolist(), dst.tolist(), w.tolist()):
            nxg.add_edge(a, b, weight=wt)
        opt = nx.max_weight_matching(nxg)
        opt_w = sum(nxg[a][b]["weight"] for a, b in opt)
        assert matched_w >= 0.5 * opt_w - 1e-9

    def test_star_pairs_hub_with_single_leaf(self, star10):
        mp = suitor_coarsen(star10, gpu_space(0))
        sizes = mp.aggregate_sizes()
        assert (sizes == 2).sum() == 1


class TestACE:
    def test_representatives_cover(self, rc100):
        reps = ace_select_representatives(rc100, gpu_space(0))
        assert 0 < len(reps) < rc100.n
        # maximality: every non-representative touches a representative
        in_c = np.zeros(rc100.n, dtype=bool)
        in_c[reps] = True
        for u in range(rc100.n):
            if not in_c[u]:
                assert in_c[rc100.neighbors(u)].any()

    def test_interpolation_columns_normalised(self, rc100):
        sp = gpu_space(0)
        reps = ace_select_representatives(rc100, sp)
        p = ace_interpolation(rc100, reps, sp)
        col_mass = np.zeros(rc100.n)
        np.add.at(col_mass, p.adjncy, p.vals)
        assert np.allclose(col_mass, 1.0)

    def test_coarse_graph_valid(self, rc100):
        out = ace_coarsen(rc100, gpu_space(0))
        validate(out["graph"])
        assert out["graph"].n == len(out["representatives"])

    def test_densification_observed(self):
        """The paper's reason for shelving ACE: coarse graphs densify."""
        g = grid_graph(20, 20)
        out = ace_coarsen(g, gpu_space(0))
        assert out["densification"] > 1.2


class TestHeapDedup:
    def test_equals_reference(self):
        from repro.coarsen import hec_parallel
        from repro.construct import construct_reference, get_constructor

        g = random_connected(150, 260, seed=6)
        mp = hec_parallel(g, gpu_space(2))
        ref = construct_reference(g, mp)
        out = get_constructor("heap")(g, mp, gpu_space(0))
        assert np.array_equal(out.xadj, ref.xadj)
        assert np.array_equal(out.adjncy, ref.adjncy)
        assert np.allclose(out.ewgts, ref.ewgts)

    def test_charges_heap_ops(self):
        from repro.coarsen import hec_parallel
        from repro.construct import get_constructor

        g = random_connected(100, 150, seed=7)
        mp = hec_parallel(g, gpu_space(1))
        sp = gpu_space(0)
        get_constructor("heap")(g, mp, sp)
        assert sp.ledger.phase("construction").hash_ops > 0
