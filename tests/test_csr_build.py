"""Builders: symmetrisation, dedup, self-loop handling, preprocessing."""

import numpy as np
import pytest

from repro.csr import from_edge_list, from_scipy, preprocess, validate


class TestFromEdgeList:
    def test_symmetrize(self):
        g = from_edge_list(3, [0], [1])
        assert g.m == 1
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(1)) == [0]

    def test_self_loops_dropped(self):
        g = from_edge_list(3, [0, 1, 2], [0, 2, 2])
        assert g.m == 1
        assert g.degree(0) == 0

    def test_duplicate_edges_max_weight(self):
        g = from_edge_list(2, [0, 0, 1], [1, 1, 0], [3.0, 7.0, 5.0])
        assert g.m == 1
        assert g.edge_weights(0)[0] == 7.0

    def test_duplicate_edges_sum_weight(self):
        g = from_edge_list(2, [0, 0], [1, 1], [3.0, 7.0], sum_duplicates=True)
        assert g.edge_weights(0)[0] == 10.0

    def test_presymmetrized_input(self):
        g = from_edge_list(2, [0, 1], [1, 0], symmetrize=False)
        assert g.m == 1
        validate(g)

    def test_rows_sorted(self):
        g = from_edge_list(5, [0, 0, 0], [4, 2, 3])
        assert list(g.neighbors(0)) == [2, 3, 4]

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            from_edge_list(3, [0], [3])
        with pytest.raises(ValueError, match="out of range"):
            from_edge_list(3, [-1], [0])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal length"):
            from_edge_list(3, [0, 1], [1])

    def test_empty_edge_list(self):
        g = from_edge_list(4, [], [])
        assert g.n == 4
        assert g.m == 0
        validate(g)

    def test_vwgts_passthrough(self):
        g = from_edge_list(2, [0], [1], vwgts=[2.0, 3.0])
        assert list(g.vwgts) == [2.0, 3.0]

    def test_validates(self, rc400):
        validate(rc400)


class TestFromScipy:
    def test_roundtrip(self, grid6):
        g2 = from_scipy(grid6.to_scipy())
        assert np.array_equal(g2.xadj, grid6.xadj)
        assert np.array_equal(g2.adjncy, grid6.adjncy)

    def test_asymmetric_input_symmetrized(self):
        import scipy.sparse as sp

        mat = sp.csr_array(np.array([[0.0, 2.0], [0.0, 0.0]]))
        g = from_scipy(mat)
        assert g.m == 1
        validate(g)


class TestPreprocess:
    def test_keeps_connected(self, grid6):
        assert preprocess(grid6) is grid6

    def test_extracts_largest_component(self):
        # component {0,1,2} (triangle) and component {3,4}
        g = from_edge_list(5, [0, 1, 2, 3], [1, 2, 0, 4])
        p = preprocess(g)
        assert p.n == 3
        assert p.m == 3
        validate(p)

    def test_relabels_contiguously(self):
        g = from_edge_list(6, [3, 4, 5], [4, 5, 3])  # triangle on {3,4,5}
        p = preprocess(g)
        assert p.n == 3
        assert set(p.adjncy.tolist()) == {0, 1, 2}
