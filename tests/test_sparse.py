"""SpMV and dense-vector kernels."""

import numpy as np
import pytest

from repro.parallel import gpu_space
from repro.sparse import deflate, deflate_constant, laplacian_spmv, norm2, normalize, spmv

from tests.conftest import grid_graph, random_connected


class TestSpmv:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_scipy(self, seed):
        g = random_connected(80, 120, seed=seed)
        x = np.random.default_rng(seed).standard_normal(g.n)
        assert np.allclose(spmv(g, x), g.to_scipy() @ x)

    def test_empty_rows(self):
        from repro.csr import from_edge_list

        g = from_edge_list(4, [0], [1])
        y = spmv(g, np.ones(4))
        assert list(y) == [1.0, 1.0, 0.0, 0.0]

    def test_cost_cached_vs_uncached(self, grid6):
        """Small vectors price their gather as streaming."""
        sp = gpu_space(0)
        spmv(grid6, np.ones(grid6.n), sp)
        assert sp.ledger.phase("refinement").random_bytes == 0

    def test_laplacian_nullspace(self, rc100):
        deg = rc100.weighted_degrees()
        y = laplacian_spmv(rc100, np.ones(rc100.n), deg)
        assert np.allclose(y, 0.0)

    def test_laplacian_psd(self, rc100):
        rng = np.random.default_rng(0)
        deg = rc100.weighted_degrees()
        for _ in range(5):
            x = rng.standard_normal(rc100.n)
            assert x @ laplacian_spmv(rc100, x, deg) >= -1e-9


class TestVectors:
    def test_norm2(self):
        assert norm2(np.array([3.0, 4.0])) == 5.0

    def test_normalize(self):
        x = normalize(np.array([3.0, 4.0]))
        assert np.allclose(np.linalg.norm(x), 1.0)

    def test_normalize_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            normalize(np.zeros(3))

    def test_deflate_constant(self):
        x = deflate_constant(np.array([1.0, 2.0, 3.0]))
        assert abs(x.sum()) < 1e-12

    def test_deflate_direction(self):
        d = normalize(np.array([1.0, 1.0, 0.0]))
        x = deflate(np.array([2.0, 4.0, 5.0]), d)
        assert abs(np.dot(x, d)) < 1e-12
