"""Equivalence and unit tests for the vectorized wave engine.

The contract of :mod:`repro.parallel.wavekernels` is *bit-exact*
equivalence with the per-lane loop references: for every graph, wave
size, and seed, the vectorized kernels must produce the same mapping,
the same pass counts and per-pass resolution tallies, and charge the
same ledger totals.  The sweep below exercises the full wave-size
spectrum — serialized (1), small waves (64), and the one-wave-per-pass
GPU regime — on a regular and a skewed corpus graph plus adversarial
synthetic shapes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coarsen.hec import hec_parallel, hec_parallel_reference, hec_serial
from repro.coarsen.hem import hem_parallel, hem_parallel_reference, hem_serial
from repro.coarsen.mapping import validate_mapping
from repro.generators.corpus import load
from repro.parallel.cost import CostLedger
from repro.parallel.execspace import ExecSpace, serial_space
from repro.parallel.machine import RYZEN32_CPU, TURING_GPU
from repro.parallel.primitives import segment_max_index, stable_key_sort
from repro.parallel.wavekernels import (
    group_ranks,
    scatter_first_wins,
    wave_bounds,
)

from .conftest import grid_graph, random_connected, star_graph

#: one regular and one skewed corpus graph, small enough that even the
#: per-lane references run at wave size 1 in test time
CORPUS_SAMPLES = ["MLGeer", "ppa"]
WAVE_SIZES = [1, 64, None]  # None = machine concurrency (one-wave GPU)
SEEDS = [0, 1, 2]


def _space(seed: int, wave_size: int | None) -> ExecSpace:
    machine = TURING_GPU if wave_size is None else RYZEN32_CPU
    return ExecSpace(
        machine, np.random.default_rng(seed), CostLedger(), wave_size=wave_size
    )


def _ledger_totals(ledger: CostLedger) -> dict:
    return {ph: ledger.phase(ph).as_dict() for ph in ledger.phases()}


def _assert_equivalent(g, kernel, reference, seed: int, wave_size: int | None):
    s_ref = _space(seed, wave_size)
    s_vec = _space(seed, wave_size)
    ref = reference(g, s_ref)
    vec = kernel(g, s_vec)
    assert np.array_equal(ref.m, vec.m)
    assert ref.n_c == vec.n_c
    assert ref.stats == vec.stats  # passes + resolved_per_pass included
    assert _ledger_totals(s_ref.ledger) == _ledger_totals(s_vec.ledger)
    validate_mapping(vec)


@pytest.mark.parametrize("graph_name", CORPUS_SAMPLES)
@pytest.mark.parametrize("wave_size", WAVE_SIZES)
@pytest.mark.parametrize("seed", SEEDS)
def test_hec_matches_reference_on_corpus(graph_name, wave_size, seed):
    g, _ = load(graph_name, 0)
    _assert_equivalent(g, hec_parallel, hec_parallel_reference, seed, wave_size)


@pytest.mark.parametrize("graph_name", CORPUS_SAMPLES)
@pytest.mark.parametrize("wave_size", WAVE_SIZES)
@pytest.mark.parametrize("seed", SEEDS)
def test_hem_matches_reference_on_corpus(graph_name, wave_size, seed):
    g, _ = load(graph_name, 0)
    _assert_equivalent(g, hem_parallel, hem_parallel_reference, seed, wave_size)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("wave_size", [1, 7, 64, None])
def test_adversarial_shapes_match_reference(seed, wave_size):
    # hubs maximise claim contention; the grid exercises mutual pairs
    for g in (star_graph(40), grid_graph(8, 8), random_connected(200, 400, seed=seed)):
        _assert_equivalent(g, hec_parallel, hec_parallel_reference, seed, wave_size)
        _assert_equivalent(g, hem_parallel, hem_parallel_reference, seed, wave_size)


@pytest.mark.parametrize("seed", SEEDS)
def test_serial_space_reproduces_hec_serial(seed):
    # wave size 1 *is* the sequential algorithm for HEC
    for g in (grid_graph(6, 6), random_connected(120, 300, seed=seed)):
        a = hec_serial(g, serial_space(seed))
        b = hec_parallel(g, serial_space(seed))
        assert np.array_equal(a.m, b.m)
        assert a.n_c == b.n_c


@pytest.mark.parametrize("seed", SEEDS)
def test_hem_serial_wave1_is_valid(seed):
    # HEM's singleton timing differs from the sequential transcription
    # (documented divergence), so serial-space equivalence is asserted
    # against the reference loop, plus mapping validity
    g = random_connected(150, 320, seed=seed)
    _assert_equivalent(g, hem_parallel, hem_parallel_reference, seed, 1)
    m = hem_serial(g, serial_space(seed))
    validate_mapping(m)


# -- unit tests for the engine primitives -------------------------------------


@pytest.mark.parametrize("total,width", [(0, 4), (1, 4), (10, 3), (12, 4), (5, 100), (7, 1)])
def test_wave_bounds_matches_waves(total, width):
    space = ExecSpace(
        RYZEN32_CPU, np.random.default_rng(0), CostLedger(), wave_size=width
    )
    assert [tuple(b) for b in wave_bounds(total, width)] == list(space.waves(total))


def test_scatter_first_wins_keeps_first_occurrence():
    dest = np.full(5, -1, dtype=np.int64)
    scatter_first_wins(dest, np.array([3, 1, 3, 1, 0]), np.array([10, 11, 12, 13, 14]))
    assert dest.tolist() == [14, 11, -1, 10, -1]


def test_group_ranks_within_runs():
    assert group_ranks(np.array([2, 2, 2, 5, 7, 7])).tolist() == [0, 1, 2, 0, 0, 1]
    assert group_ranks(np.array([], dtype=np.int64)).tolist() == []


@pytest.mark.parametrize("seed", SEEDS)
def test_stable_key_sort_matches_argsort(seed):
    rng = np.random.default_rng(seed)
    key = rng.integers(0, 50, 1000)
    order, sorted_key = stable_key_sort(key, 50)
    expect = np.argsort(key, kind="stable")
    assert np.array_equal(order, expect)
    assert np.array_equal(sorted_key, key[expect])


def test_has_unit_ewgts_and_tie_mask():
    g = random_connected(60, 150, seed=0)
    assert g.has_unit_ewgts() == bool(np.all(g.ewgts == 1.0))
    assert np.array_equal(g.tie_mask(), g.edge_sources() < g.adjncy)


def test_segment_max_index_constant_and_varied():
    xadj = np.array([0, 3, 3, 7])
    const = np.ones(7)
    out = segment_max_index(None, const, xadj)
    assert out.tolist() == [0, -1, 3]  # first entry wins; empty segment -1
    varied = np.array([1.0, 5.0, 5.0, 2.0, 9.0, 9.0, 1.0])
    out = segment_max_index(None, varied, xadj)
    assert out.tolist() == [1, -1, 4]  # ties resolve to the earliest entry
