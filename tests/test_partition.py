"""Partitioning: metrics, GGG, FM, spectral, multilevel, baselines."""

import numpy as np
import pytest

from repro.csr import from_edge_list
from repro.parallel import cpu_space, gpu_space
from repro.partition import (
    compute_gains,
    edge_cut,
    fiedler_power_iteration,
    fm_refine,
    greedy_graph_growing,
    imbalance,
    median_split,
    metis_like,
    mtmetis_like,
    multilevel_bisect,
    partition_weights,
    rebalance_exact,
    spectral_bisect,
    validate_partition,
)
from repro.partition.spectral import fiedler_dense

from tests.conftest import grid_graph, path_graph, random_connected, two_triangles


class TestMetrics:
    def test_edge_cut_known(self):
        g = two_triangles()
        part = np.array([0, 0, 0, 1, 1, 1], dtype=np.int8)
        assert edge_cut(g, part) == 1.0

    def test_edge_cut_weighted(self):
        g = from_edge_list(3, [0, 1], [1, 2], [5.0, 7.0])
        assert edge_cut(g, np.array([0, 0, 1])) == 7.0
        assert edge_cut(g, np.array([0, 1, 1])) == 5.0

    def test_partition_weights(self):
        g = from_edge_list(3, [0, 1], [1, 2], vwgts=[1.0, 2.0, 4.0])
        w = partition_weights(g, np.array([0, 1, 0]))
        assert list(w) == [5.0, 2.0]

    def test_imbalance(self):
        g = from_edge_list(4, [0, 1, 2], [1, 2, 3])
        assert imbalance(g, np.array([0, 0, 1, 1])) == 0.0
        assert imbalance(g, np.array([0, 0, 0, 1])) == pytest.approx(0.5)

    def test_validate(self):
        g = two_triangles()
        validate_partition(g, np.zeros(6, dtype=np.int8))
        with pytest.raises(ValueError):
            validate_partition(g, np.zeros(3, dtype=np.int8))
        with pytest.raises(ValueError):
            validate_partition(g, np.full(6, 3, dtype=np.int8))


class TestGGG:
    def test_balanced_on_grid(self, grid6):
        part = greedy_graph_growing(grid6, gpu_space(0))
        assert imbalance(grid6, part) <= 2 / 18  # within one vertex of half

    def test_two_triangles_optimal(self):
        g = two_triangles()
        part = greedy_graph_growing(g, gpu_space(1), trials=8)
        assert edge_cut(g, part) == 1.0

    def test_single_vertex(self):
        g = from_edge_list(1, [], [])
        assert list(greedy_graph_growing(g, gpu_space(0))) == [0]


class TestGains:
    def test_gain_formula_bruteforce(self, rc100):
        rng = np.random.default_rng(2)
        part = (rng.random(rc100.n) < 0.5).astype(np.int8)
        gains = compute_gains(rc100, part)
        base = edge_cut(rc100, part)
        for v in range(0, rc100.n, 7):
            flipped = part.copy()
            flipped[v] = 1 - flipped[v]
            assert edge_cut(rc100, flipped) == pytest.approx(base - gains[v])


class TestFM:
    def test_improves_noisy_partition(self, grid6):
        rng = np.random.default_rng(0)
        # a balanced but random partition: high cut
        part = np.zeros(grid6.n, dtype=np.int8)
        part[rng.permutation(grid6.n)[: grid6.n // 2]] = 1
        before = edge_cut(grid6, part)
        out = fm_refine(grid6, part, gpu_space(0))
        after = edge_cut(grid6, out)
        assert after < before
        assert imbalance(grid6, out) <= 2 / grid6.n + 1e-9

    def test_never_worsens_balanced_cut(self):
        for seed in range(4):
            g = random_connected(100, 160, seed=seed)
            part = (np.arange(g.n) % 2).astype(np.int8)
            before = edge_cut(g, part)
            out = fm_refine(g, part, gpu_space(seed))
            assert edge_cut(g, out) <= before + 1e-9

    def test_input_not_mutated(self, grid6):
        part = (np.arange(grid6.n) % 2).astype(np.int8)
        copy = part.copy()
        fm_refine(grid6, part, gpu_space(0))
        assert np.array_equal(part, copy)

    def test_walks_imbalanced_to_balance(self, grid6):
        part = np.zeros(grid6.n, dtype=np.int8)  # everything on one side
        part[:3] = 1
        out = fm_refine(grid6, part, gpu_space(0))
        assert imbalance(grid6, out) < imbalance(grid6, part)

    def test_empty_graph(self):
        g = from_edge_list(0, [], [])
        out = fm_refine(g, np.zeros(0, dtype=np.int8), gpu_space(0))
        assert len(out) == 0

    def test_respects_vertex_weights(self):
        # heavy vertex cannot cross if it would wreck balance
        g = from_edge_list(4, [0, 1, 2], [1, 2, 3], vwgts=[10.0, 1.0, 1.0, 10.0])
        part = np.array([0, 0, 1, 1], dtype=np.int8)
        out = fm_refine(g, part, gpu_space(0))
        assert abs(partition_weights(g, out)[0] - 11.0) <= 2.0


class TestRebalance:
    def test_exact_balance_unit_weights(self, grid6):
        part = np.zeros(grid6.n, dtype=np.int8)
        part[:10] = 1  # 10 vs 26
        out = rebalance_exact(grid6, part, gpu_space(0))
        w = partition_weights(grid6, out)
        assert w[0] == w[1]

    def test_noop_when_balanced(self, grid6):
        part = (np.arange(grid6.n) % 2).astype(np.int8)
        out = rebalance_exact(grid6, part, gpu_space(0))
        assert np.array_equal(out, part)

    def test_odd_total_stops(self):
        g = path_graph(5)
        part = np.zeros(5, dtype=np.int8)
        out = rebalance_exact(g, part, gpu_space(0))
        # perfect balance impossible with odd unit total; must terminate
        assert abs(partition_weights(g, out)[0] - partition_weights(g, out)[1]) >= 1


class TestSpectral:
    def test_fiedler_of_path_is_monotone(self):
        g = path_graph(20)
        x, _ = fiedler_power_iteration(g, gpu_space(0), max_iters=3000, tol=1e-14)
        d = np.diff(x)
        assert np.all(d > 0) or np.all(d < 0)

    def test_dense_fiedler_matches_power(self):
        g = path_graph(16)
        xd = fiedler_dense(g, gpu_space(0))
        xp, _ = fiedler_power_iteration(g, gpu_space(0), max_iters=5000, tol=1e-14)
        align = np.sign(np.dot(xd, xp))
        assert np.allclose(xd * align, xp, atol=1e-3)

    def test_median_split_balance(self):
        x = np.array([0.5, -1.0, 2.0, 0.0])
        part = median_split(x, np.ones(4))
        assert partition_weights(from_edge_list(4, [0], [1]), part)[0] == 2

    def test_median_split_weighted(self):
        x = np.array([1.0, 2.0, 3.0])
        part = median_split(x, np.array([1.0, 1.0, 2.0]))
        assert part[2] == 1  # the heavy top vertex alone balances

    def test_spectral_bisect_two_triangles(self):
        g = two_triangles()
        part, x, iters = spectral_bisect(g, gpu_space(0), max_iters=2000)
        assert edge_cut(g, part) == 1.0

    def test_single_vertex(self):
        g = from_edge_list(1, [], [])
        x, iters = fiedler_power_iteration(g, gpu_space(0))
        assert len(x) == 1


class TestMultilevelBisect:
    @pytest.mark.parametrize("refinement", ["fm", "spectral"])
    def test_grid_quality(self, refinement):
        g = grid_graph(16, 16)
        res = multilevel_bisect(g, gpu_space(3), refinement=refinement)
        validate_partition(g, res.part)
        assert res.stats["imbalance"] == 0.0
        assert res.cut <= 2.0 * 16  # within 2x of the optimal straight cut

    def test_fm_beats_or_ties_spectral_on_grid(self):
        g = grid_graph(16, 16)
        fm = min(multilevel_bisect(g, gpu_space(s), refinement="fm").cut for s in range(3))
        sp = min(
            multilevel_bisect(g, gpu_space(s), refinement="spectral").cut for s in range(3)
        )
        assert fm <= sp * 1.5

    def test_unknown_refinement(self, grid6):
        with pytest.raises(ValueError, match="refinement"):
            multilevel_bisect(grid6, gpu_space(0), refinement="magic")

    def test_result_fields(self, grid6):
        res = multilevel_bisect(grid6, gpu_space(0))
        assert res.levels == res.hierarchy.levels
        assert res.stats["coarsener"] == "hec"
        assert res.cut == edge_cut(grid6, res.part)

    @pytest.mark.parametrize("coarsener", ["hec", "hem", "mtmetis", "mis2"])
    def test_coarsener_choices(self, coarsener):
        g = random_connected(200, 320, seed=2)
        res = multilevel_bisect(g, gpu_space(1), coarsener=coarsener)
        validate_partition(g, res.part)
        assert res.stats["imbalance"] <= 1.0 / (g.n // 2)


class TestBaselines:
    def test_metis_like(self, grid6):
        res = metis_like(grid6, seed=1)
        validate_partition(grid6, res.part)
        assert "sim_seconds" in res.stats
        assert res.stats["sim_seconds"] > 0

    def test_mtmetis_like(self, grid6):
        res = mtmetis_like(grid6, seed=1)
        validate_partition(grid6, res.part)
        assert res.stats["coarsener"] == "mtmetis"
