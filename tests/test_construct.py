"""Construction strategies: equivalence, dedup optimization, invariants."""

import numpy as np
import pytest

from repro.coarsen import get_coarsener, hec_parallel
from repro.construct import (
    SKEW_THRESHOLD,
    available_constructors,
    construct_reference,
    degree_estimates,
    get_constructor,
    is_skewed,
    keep_lighter_end,
    mapped_cross_edges,
)
from repro.construct import dedup as dedup_mod
from repro.csr import from_edge_list, validate
from repro.parallel import gpu_space

from tests.conftest import grid_graph, random_connected, star_graph

ALL_CONSTRUCTORS = sorted(available_constructors())


def _graphs_equal(a, b):
    return (
        np.array_equal(a.xadj, b.xadj)
        and np.array_equal(a.adjncy, b.adjncy)
        and np.allclose(a.ewgts, b.ewgts)
        and np.allclose(a.vwgts, b.vwgts)
    )


class TestRegistry:
    def test_registered(self):
        assert set(ALL_CONSTRUCTORS) == {
            "sort", "hash", "spgemm", "global_sort", "heap",
        }

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown constructor"):
            get_constructor("bogus")


@pytest.mark.parametrize("cname", ALL_CONSTRUCTORS)
@pytest.mark.parametrize("coarsener", ["hec", "hem", "mis2"])
class TestEquivalence:
    """All strategies produce the reference coarse graph — the central
    correctness property of Section III-B."""

    def test_matches_reference(self, cname, coarsener):
        g = random_connected(150, 250, seed=11)
        mp = get_coarsener(coarsener)(g, gpu_space(4))
        ref = construct_reference(g, mp)
        out = get_constructor(cname)(g, mp, gpu_space(0))
        assert _graphs_equal(out, ref)
        validate(out)


@pytest.mark.parametrize("cname", ALL_CONSTRUCTORS)
class TestConstructionInvariants:
    def _coarse(self, cname, g, seed=0):
        mp = hec_parallel(g, gpu_space(seed))
        return mp, get_constructor(cname)(g, mp, gpu_space(seed))

    def test_weight_conservation(self, cname):
        g = random_connected(200, 350, seed=3)
        mp, gc = self._coarse(cname, g)
        src, dst, w = g.to_coo()
        intra = w[mp.m[src] == mp.m[dst]].sum() / 2.0
        assert gc.total_edge_weight() == pytest.approx(g.total_edge_weight() - intra)

    def test_vertex_weight_aggregation(self, cname):
        g = random_connected(200, 350, seed=4)
        mp, gc = self._coarse(cname, g)
        expected = np.zeros(mp.n_c)
        np.add.at(expected, mp.m, g.vwgts)
        assert np.allclose(gc.vwgts, expected)

    def test_no_self_loops_or_duplicates(self, cname):
        g = random_connected(200, 350, seed=5)
        _, gc = self._coarse(cname, g)
        validate(gc)

    def test_star_collapse_yields_empty_coarse(self, cname, star10):
        """All vertices in one aggregate: the coarse graph has no edges."""
        mp = hec_parallel(star10, gpu_space(0))
        assert mp.n_c == 1
        gc = get_constructor(cname)(star10, mp, gpu_space(0))
        assert gc.n == 1
        assert gc.m == 0

    def test_identity_mapping_reproduces_graph(self, cname):
        from repro.coarsen import CoarseMapping

        g = random_connected(80, 120, seed=6)
        mp = CoarseMapping(np.arange(g.n), g.n)
        gc = get_constructor(cname)(g, mp, gpu_space(0))
        assert _graphs_equal(gc, g) or (
            np.array_equal(gc.xadj, g.xadj)
            and np.array_equal(gc.adjncy, g.adjncy)
            and np.allclose(gc.ewgts, g.ewgts)
        )


class TestSkewHeuristic:
    def test_star_is_skewed(self):
        g = from_edge_list(30, [0] * 29, list(range(1, 30)))
        assert is_skewed(g)

    def test_grid_is_not(self, grid6):
        assert not is_skewed(grid6)

    def test_threshold_boundary(self):
        assert SKEW_THRESHOLD == 5.0


class TestKeepSide:
    def test_exactly_one_copy_survives(self):
        g = random_connected(120, 200, seed=7)
        mp = hec_parallel(g, gpu_space(1))
        sp = gpu_space(0)
        mu, mv, w, u, v = mapped_cross_edges(g, mp, sp)
        c_prime = degree_estimates(mu, mp.n_c, sp)
        keep = keep_lighter_end(mu, mv, u, v, c_prime, sp)
        # pair each directed copy with its reverse: exactly one kept
        fwd = {(int(a), int(b)) for a, b in zip(u[keep], v[keep])}
        for a, b in zip(u.tolist(), v.tolist()):
            assert ((a, b) in fwd) != ((b, a) in fwd)

    def test_cprime_upper_bounds_true_degree(self):
        g = random_connected(120, 200, seed=8)
        mp = hec_parallel(g, gpu_space(2))
        sp = gpu_space(0)
        mu, mv, w, u, v = mapped_cross_edges(g, mp, sp)
        c_prime = degree_estimates(mu, mp.n_c, sp)
        gc = get_constructor("sort")(g, mp, gpu_space(0))
        assert np.all(np.diff(gc.xadj) <= c_prime)

    def test_reference_same_with_and_without_optimization(self):
        g = random_connected(100, 300, seed=9)
        mp = hec_parallel(g, gpu_space(3))
        a = construct_reference(g, mp, use_keep_side=True)
        b = construct_reference(g, mp, use_keep_side=False)
        assert _graphs_equal(a, b)

    def test_optimization_halves_dedup_entries(self, monkeypatch):
        """With the sweep on, the dedup kernels see half the entries."""
        g = from_edge_list(40, [0] * 39, list(range(1, 40)))  # skewed star
        # star collapses under hec; use a 2-coloring mapping instead
        from repro.coarsen import CoarseMapping

        m = np.arange(40) % 5
        mp = CoarseMapping(m, 5)
        seen = {}
        import repro.construct.vertex_sort as vs

        real = vs.sorted_dedup

        def spy(mu, mv, w, n_c, space, phase="construction", packed=None):
            seen["entries"] = len(packed if packed is not None else mu)
            return real(mu, mv, w, n_c, space, phase, packed=packed)

        monkeypatch.setattr(vs, "sorted_dedup", spy)
        vs.construct_sort(g, mp, gpu_space(0))
        with_opt = seen["entries"]
        # without the sweep, dedup would see both directed copies of
        # every cross edge; the sweep keeps exactly one per edge
        cross = m[g.edge_sources()] != m[g.adjncy]
        assert with_opt * 2 == int(cross.sum())
        # the regular path is fully fused and never materialises a
        # separate dedup input at all
        seen.clear()
        monkeypatch.setattr(dedup_mod, "SKEW_THRESHOLD", float("inf"))
        vs.construct_sort(g, mp, gpu_space(0))
        assert "entries" not in seen
