"""The examples must run end-to-end (they are the documented entry points)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def _run(name: str, *args: str) -> str:
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert out.returncode == 0, out.stderr
    return out.stdout


def test_quickstart():
    out = _run("quickstart.py", "ppa")
    assert "hierarchy" in out
    assert "bisection" in out


def test_coarsen_visualize(tmp_path):
    out = _run("coarsen_visualize.py", str(tmp_path))
    assert "hec" in out
    assert (tmp_path / "hec.dot").exists()
    assert (tmp_path / "mis2.dot").exists()


def test_hec_anatomy():
    out = _run("hec_anatomy.py")
    assert "create" in out
    assert "pseudoforest" in out
    assert "two-pass fraction" in out


def test_partition_compare():
    out = _run("partition_compare.py", "ppa", "2")
    assert "hec+fm" in out
    assert "metis-like" in out


def test_weak_scaling():
    out = _run("weak_scaling.py", "9", "10")
    assert "rgg" in out
    assert "kron" in out
