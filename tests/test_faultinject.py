"""Deterministic fault injection: spec grammar, matching, counters."""

from __future__ import annotations

import errno

import pytest

from repro import faultinject
from repro.faultinject import FaultInjected, FaultPlan


@pytest.fixture(autouse=True)
def _disarm():
    faultinject.clear()
    yield
    faultinject.clear()


class TestSpecParsing:
    def test_single_rule(self):
        plan = FaultPlan.parse("pool.worker:crash")
        assert len(plan.rules) == 1
        assert plan.rules[0].site == "pool.worker"
        assert plan.rules[0].kind == "crash"

    def test_params_and_matchers(self):
        plan = FaultPlan.parse(
            "pool.worker:oserror:graph=ppa,attempt<2,after=1,times=3,errno=EIO"
        )
        (rule,) = plan.rules
        assert rule.after == 1
        assert rule.times == 3
        assert rule.errno_name == "EIO"
        assert ("graph", "=", "ppa") in rule.matchers
        assert ("attempt", "<", "2") in rule.matchers

    def test_multiple_rules(self):
        plan = FaultPlan.parse("shm.publish:oserror; journal.write:kill:after=3")
        assert [r.site for r in plan.rules] == ["shm.publish", "journal.write"]

    def test_malformed_rule_rejected(self):
        with pytest.raises(ValueError, match="malformed fault rule"):
            FaultPlan.parse("justasite")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("pool.worker:explode")

    def test_malformed_param_rejected(self):
        with pytest.raises(ValueError, match="malformed fault param"):
            FaultPlan.parse("pool.worker:crash:huh")


class TestMatching:
    def test_label_equality(self):
        plan = FaultPlan.parse("pool.worker:error:graph=ppa")
        with pytest.raises(FaultInjected):
            plan.fire("pool.worker", {"graph": "ppa"})
        plan.fire("pool.worker", {"graph": "citation"})  # no match, no fire
        plan.fire("shm.publish", {"graph": "ppa"})  # different site

    def test_numeric_less_than(self):
        plan = FaultPlan.parse("pool.worker:error:attempt<2")
        with pytest.raises(FaultInjected):
            plan.fire("pool.worker", {"attempt": 0})
        with pytest.raises(FaultInjected):
            plan.fire("pool.worker", {"attempt": 1})
        plan.fire("pool.worker", {"attempt": 2})  # not < 2

    def test_missing_label_never_matches(self):
        plan = FaultPlan.parse("pool.worker:error:graph=ppa")
        plan.fire("pool.worker", {})  # no graph label -> no fire

    def test_oserror_carries_errno(self):
        plan = FaultPlan.parse("cache.store:oserror:errno=EIO")
        with pytest.raises(OSError) as exc:
            plan.fire("cache.store", {"key": "k"})
        assert exc.value.errno == errno.EIO


class TestCounters:
    def test_after_skips_first_hits(self):
        plan = FaultPlan.parse("journal.write:error:after=2")
        plan.fire("journal.write", {})
        plan.fire("journal.write", {})
        with pytest.raises(FaultInjected):
            plan.fire("journal.write", {})

    def test_times_caps_firing(self):
        plan = FaultPlan.parse("pool.worker:error:times=1")
        with pytest.raises(FaultInjected):
            plan.fire("pool.worker", {})
        plan.fire("pool.worker", {})  # exhausted

    def test_deterministic_sequence(self):
        """Same call sequence, same firing pattern — twice over."""
        outcomes = []
        for _ in range(2):
            plan = FaultPlan.parse("pool.worker:error:after=1,times=2")
            fired = []
            for i in range(5):
                try:
                    plan.fire("pool.worker", {"i": i})
                    fired.append(False)
                except FaultInjected:
                    fired.append(True)
            outcomes.append(fired)
        assert outcomes[0] == outcomes[1] == [False, True, True, False, False]


class TestModuleState:
    def test_install_and_env_round_trip(self, monkeypatch):
        monkeypatch.delenv(faultinject.ENV_VAR, raising=False)
        faultinject.install("pool.worker:error")
        assert faultinject.active()
        import os

        assert os.environ[faultinject.ENV_VAR] == "pool.worker:error"
        with pytest.raises(FaultInjected):
            faultinject.fire("pool.worker", graph="x")
        faultinject.install(None)
        assert not faultinject.active()
        assert faultinject.ENV_VAR not in os.environ

    def test_env_var_loads_lazily(self, monkeypatch):
        faultinject.clear()
        monkeypatch.setenv(faultinject.ENV_VAR, "shm.attach:error")
        faultinject._PLAN = faultinject._UNLOADED  # simulate a fresh process
        with pytest.raises(FaultInjected):
            faultinject.fire("shm.attach", graph="g")

    def test_reset_zeroes_counters(self):
        faultinject.install("pool.worker:error:times=1")
        with pytest.raises(FaultInjected):
            faultinject.fire("pool.worker")
        faultinject.fire("pool.worker")  # exhausted
        faultinject.reset()
        with pytest.raises(FaultInjected):
            faultinject.fire("pool.worker")

    def test_fire_is_noop_without_plan(self):
        faultinject.clear()
        faultinject.fire("pool.worker", graph="anything")  # must not raise

    def test_sites_registry_covers_wired_points(self):
        for site in ("pool.worker", "pool.create", "shm.publish",
                     "shm.attach", "cache.store", "journal.write"):
            assert site in faultinject.SITES
