"""Multiprocess experiment executor: determinism, shm corpus, failure modes."""

from __future__ import annotations

import os
import time

import pytest

from repro.bench.report import main as bench_main
from repro.generators import corpus
from repro.parallel.pool import (
    ExperimentTask,
    PoolTimeout,
    WorkerCrash,
    default_jobs,
    format_pool_summary,
    publish_corpus,
    run_experiments,
    task_weight,
)

CPUS = default_jobs()


class TestTaskWeight:
    """Tier-aware LPT: mapped tenants weigh their scale, not the base's."""

    def test_measured_size_wins(self):
        sizes = {("ppa", 0): 123, ("ppa@x100", 0): 456}
        assert task_weight("ppa", 0, sizes) == 123
        assert task_weight("ppa@x100", 0, sizes) == 456

    def test_tier_scales_base_measurement(self):
        # no measurement for the mapped tenant itself: scale the base's
        sizes = {("ppa", 0): 1000}
        assert task_weight("ppa@x10", 0, sizes) == 10_000
        assert task_weight("ppa@x100", 0, sizes) == 100_000

    def test_tier_scale_alone_as_last_resort(self):
        assert task_weight("ppa", 0, {}) == 1
        assert task_weight("ppa@x100", 0, {}) == 100
        # unknown-tier names fall back to base weighting
        assert task_weight("weird@name", 0, {}) == 1

    def test_lpt_orders_mapped_tenant_first(self):
        sizes = {("ppa", 0): 1000, ("citation", 0): 3000}
        tasks = [
            ExperimentTask(kind="coarsen", graph="citation"),
            ExperimentTask(kind="coarsen", graph="ppa@x100"),
            ExperimentTask(kind="coarsen", graph="ppa"),
        ]
        order = sorted(
            range(len(tasks)),
            key=lambda i: (-task_weight(tasks[i].graph, tasks[i].seed, sizes), i),
        )
        # the x100 tenant (weight 100_000) must lead despite the base
        # graph measuring smaller than citation
        assert [tasks[i].graph for i in order] == ["ppa@x100", "citation", "ppa"]


def _tree_bytes(root):
    """Every file under ``root`` as relpath -> raw bytes."""
    return {
        p.relative_to(root).as_posix(): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


class TestDeterministicMerge:
    def test_full_corpus_bitwise_identical_across_jobs(self, tmp_path):
        """The acceptance bar: results.json, every trace (ledger totals and

        rollups included), byte-for-byte equal at --jobs 1, 2, and 4."""
        trees = {}
        for jobs in (1, 2, 4):
            out_dir = tmp_path / f"jobs{jobs}"
            rc = bench_main(
                ["--trace-dir", str(out_dir), "corpus", "--jobs", str(jobs)]
            )
            assert rc == 0
            trees[jobs] = _tree_bytes(out_dir)
        assert set(trees[1]) == set(trees[2]) == set(trees[4])
        assert "results.json" in trees[1]
        assert any(name.endswith(".trace.json") for name in trees[1])
        for jobs in (2, 4):
            for name, blob in trees[1].items():
                assert trees[jobs][name] == blob, (jobs, name)

    def test_api_results_equal_serial_vs_pool(self):
        tasks = [
            ExperimentTask(kind="coarsen", graph=g, coarsener=c)
            for g in ("ppa", "citation")
            for c in ("hec", "hem")
        ]
        serial = run_experiments(tasks, jobs=1)
        pooled = run_experiments(tasks, jobs=2)
        # full row equality: scalar fields AND the trace dict (span tree,
        # rollups, ledger totals) must match the serial reference exactly
        assert serial.results == pooled.results

    def test_results_follow_task_order_not_completion_order(self):
        # LPT submits the biggest graph first; the merge must still
        # return rows in the caller's order
        tasks = [
            ExperimentTask(kind="coarsen", graph=g)
            for g in ("ppa", "kron21", "citation")
        ]
        out = run_experiments(tasks, jobs=2)
        assert [r["graph"] for r in out.results] == ["ppa", "kron21", "citation"]

    def test_duplicate_config_rejected(self):
        tasks = [ExperimentTask(kind="coarsen", graph="ppa")] * 2
        with pytest.raises(ValueError, match="duplicate task configuration"):
            run_experiments(tasks, jobs=1)


class TestPoolSummary:
    def test_summary_accounting(self):
        tasks = [
            ExperimentTask(kind="coarsen", graph="ppa", seed=s) for s in range(3)
        ]
        out = run_experiments(tasks, jobs=2)
        s = out.summary
        assert s["jobs"] == 2 and s["tasks"] == 3
        assert s["wall_s"] > 0 and s["busy_s"] > 0
        assert 0.0 < s["utilization"] <= 1.0
        assert s["overhead_s"] >= 0.0
        assert s["shared_mib"] > 0.0  # corpus was published to shared memory
        assert sum(w["tasks"] for w in s["workers"].values()) == 3
        text = format_pool_summary(s)
        assert "worker" in text and "utilization" in text

    def test_serial_summary(self):
        out = run_experiments([ExperimentTask(kind="coarsen", graph="ppa")], jobs=1)
        assert out.summary["jobs"] == 1
        assert out.summary["shared_mib"] == 0.0
        assert len(out.summary["workers"]) == 1


class TestSharedCorpus:
    def test_publish_corpus_descriptors_and_cleanup(self):
        descriptors, handles, sizes = publish_corpus([("ppa", 0), ("ppa", 0)])
        try:
            assert set(descriptors) == {("ppa", 0)}  # deduplicated
            desc = descriptors[("ppa", 0)]
            assert desc["graph_name"] == "ppa"
            assert desc["nbytes"] == sum(f["count"] * 8 for f in desc["layout"])
            assert sizes[("ppa", 0)] > 0
        finally:
            for shm in handles:
                shm.close()
                shm.unlink()


def _crash_task(task):  # noqa: ARG001 - pool task signature
    os._exit(13)


def _sleepy_task(task):  # noqa: ARG001 - pool task signature
    time.sleep(600)


def _load_graph_task(task):
    g, _spec = corpus.load(task.graph, task.seed)
    return {
        "key": task.key(),
        "pid": os.getpid(),
        "wall_s": 0.0,
        "row": {"graph": task.graph, "n": int(g.n)},
    }


def _tiny_factory(seed):
    import numpy as np

    from repro.csr import from_edge_list

    with open(os.environ["REPRO_TEST_GEN_LOG"], "a") as fh:
        fh.write(f"{os.getpid()}\n")
    src = np.arange(31)
    return from_edge_list(32, src, src + 1)


class TestFailureSurfacing:
    def test_worker_crash_raises_instead_of_hanging(self):
        tasks = [ExperimentTask(kind="coarsen", graph="ppa", seed=s) for s in range(4)]
        t0 = time.monotonic()
        with pytest.raises(WorkerCrash, match="worker process died"):
            run_experiments(
                tasks, jobs=2, task_fn=_crash_task, share_corpus=False, timeout=120
            )
        assert time.monotonic() - t0 < 60

    def test_pool_timeout_terminates_workers(self):
        tasks = [ExperimentTask(kind="coarsen", graph="ppa")]
        t0 = time.monotonic()
        with pytest.raises(PoolTimeout, match="wall-clock budget"):
            run_experiments(
                tasks, jobs=2, task_fn=_sleepy_task, share_corpus=False, timeout=1.0
            )
        assert time.monotonic() - t0 < 60

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown task kind"):
            run_experiments([ExperimentTask(kind="nope", graph="ppa")], jobs=1)


class TestSingleFlight:
    def test_concurrent_workers_generate_once(self, tmp_path, monkeypatch):
        """Four workers race to load the same uncached graph; the cache's

        per-entry lock must single-flight generation: exactly one worker
        pays it, the rest block and load the saved artifact."""
        gen_log = tmp_path / "generated.log"
        gen_log.touch()
        monkeypatch.setenv("REPRO_TEST_GEN_LOG", str(gen_log))
        monkeypatch.setattr(corpus, "_CACHE_DIR", tmp_path / "cache")
        spec = corpus.GraphSpec(
            name="tinytest", domain="test", group="regular",
            paper_m=31, paper_n=32, paper_skew=1.0, factory=_tiny_factory,
        )
        monkeypatch.setitem(corpus._BY_NAME, "tinytest", spec)
        # same (graph, seed) -> same cache entry; distinct configs so the
        # merge keys stay unique
        tasks = [
            ExperimentTask(kind="coarsen", graph="tinytest", machine=m, coarsener=c)
            for m in ("gpu", "cpu")
            for c in ("hec", "hem")
        ]
        out = run_experiments(
            tasks, jobs=4, task_fn=_load_graph_task, share_corpus=False, timeout=120
        )
        assert len(out.results) == 4
        assert all(r["n"] == 32 for r in out.results)
        assert len(gen_log.read_text().splitlines()) == 1


@pytest.mark.skipif(CPUS < 4, reason="speedup assertion needs >= 4 usable CPUs")
class TestSpeedup:
    def test_jobs4_at_least_2_5x_faster(self):
        """The ISSUE acceptance criterion, measured on the real corpus:

        repetition blocks give each task enough work that pool startup
        and merge overhead cannot mask the scaling."""
        tasks = [
            ExperimentTask(kind="coarsen", graph=spec.name, wallclock=True,
                           reps=5, warmup=1)
            for spec in corpus.CORPUS
        ]
        serial = run_experiments(tasks, jobs=1)
        pooled = run_experiments(tasks, jobs=4)
        speedup = serial.summary["wall_s"] / pooled.summary["wall_s"]
        assert speedup >= 2.5, f"--jobs 4 speedup only x{speedup:.2f}"
