"""Connected components vs known structure and networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.csr import connected_components, from_edge_list, is_connected, largest_component

from tests.conftest import random_connected, ring_graph


class TestKnownStructures:
    def test_ring_connected(self, ring8):
        count, labels = connected_components(ring8)
        assert count == 1
        assert np.all(labels == 0)

    def test_two_components(self):
        g = from_edge_list(5, [0, 1, 3], [1, 2, 4])
        count, labels = connected_components(g)
        assert count == 2
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]

    def test_isolated_vertices(self):
        g = from_edge_list(4, [0], [1])
        count, labels = connected_components(g)
        assert count == 3

    def test_empty_graph(self):
        g = from_edge_list(0, [], [])
        assert is_connected(g)
        count, _ = connected_components(g)
        assert count == 0

    def test_single_vertex(self):
        g = from_edge_list(1, [], [])
        assert is_connected(g)

    def test_is_connected(self, grid6, star10):
        assert is_connected(grid6)
        assert is_connected(star10)
        assert not is_connected(from_edge_list(3, [0], [1]))

    def test_largest_component_full(self, grid6):
        assert len(largest_component(grid6)) == grid6.n

    def test_largest_component_partial(self):
        g = from_edge_list(7, [0, 1, 2, 4], [1, 2, 3, 5])
        comp = largest_component(g)
        assert set(comp.tolist()) == {0, 1, 2, 3}


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = 60
        edges = rng.integers(0, n, size=(50, 2))
        g = from_edge_list(n, edges[:, 0], edges[:, 1])
        nxg = nx.Graph()
        nxg.add_nodes_from(range(n))
        nxg.add_edges_from(e for e in edges.tolist() if e[0] != e[1])
        count, labels = connected_components(g)
        assert count == nx.number_connected_components(nxg)
        # label partition must match networkx's partition
        for comp in nx.connected_components(nxg):
            comp = list(comp)
            assert len(set(labels[comp].tolist())) == 1
