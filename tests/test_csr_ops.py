"""Structural ops: permutation, subgraphs, validation."""

import numpy as np
import pytest

from repro.csr import (
    degree_histogram,
    from_edge_list,
    induced_subgraph,
    laplacian_csr,
    permute,
    validate,
)
from repro.csr.graph import CSRGraph
from repro.types import VI, WT


class TestPermute:
    def test_identity(self, grid6):
        g = permute(grid6, np.arange(grid6.n))
        assert np.array_equal(g.xadj, grid6.xadj)
        assert np.array_equal(g.adjncy, grid6.adjncy)

    def test_reverse_roundtrip(self, rc100):
        perm = np.arange(rc100.n)[::-1].copy()
        g = permute(permute(rc100, perm), perm)
        assert np.array_equal(g.xadj, rc100.xadj)
        assert np.array_equal(g.adjncy, rc100.adjncy)
        assert np.allclose(g.ewgts, rc100.ewgts)

    def test_preserves_structure(self, rc100):
        rng = np.random.default_rng(1)
        perm = rng.permutation(rc100.n)
        g = permute(rc100, perm)
        validate(g)
        assert g.m == rc100.m
        # degree multiset preserved
        assert sorted(g.degrees().tolist()) == sorted(rc100.degrees().tolist())
        # specific vertex degree follows the relabelling
        for u in (0, 5, 50):
            assert g.degree(perm[u]) == rc100.degree(u)

    def test_vwgts_follow(self):
        g = from_edge_list(3, [0, 1], [1, 2], vwgts=[1.0, 2.0, 3.0])
        p = permute(g, np.array([2, 0, 1]))
        assert list(p.vwgts) == [2.0, 3.0, 1.0]

    def test_invalid_perm_raises(self, ring8):
        with pytest.raises(ValueError):
            permute(ring8, np.zeros(8, dtype=int))
        with pytest.raises(ValueError):
            permute(ring8, np.arange(7))


class TestInducedSubgraph:
    def test_subgraph_of_grid(self, grid6):
        sub = induced_subgraph(grid6, np.arange(6))  # first row
        assert sub.n == 6
        assert sub.m == 5  # a path
        validate(sub)

    def test_keeps_weights(self):
        g = from_edge_list(4, [0, 1, 2], [1, 2, 3], [5.0, 6.0, 7.0])
        sub = induced_subgraph(g, np.array([1, 2, 3]))
        assert sorted(sub.ewgts.tolist()) == [6.0, 6.0, 7.0, 7.0]

    def test_empty_selection(self, grid6):
        sub = induced_subgraph(grid6, np.array([], dtype=int))
        assert sub.n == 0


class TestValidate:
    def _graph(self, **overrides):
        base = dict(
            xadj=np.array([0, 1, 2], dtype=VI),
            adjncy=np.array([1, 0], dtype=VI),
            ewgts=np.array([1.0, 1.0], dtype=WT),
            vwgts=np.array([1.0, 1.0], dtype=WT),
        )
        base.update(overrides)
        return CSRGraph(**base)

    def test_valid_passes(self):
        validate(self._graph())

    def test_out_of_range_neighbor(self):
        g = self._graph(adjncy=np.array([1, 5], dtype=VI))
        with pytest.raises(ValueError):
            validate(g)

    def test_self_loop(self):
        g = self._graph(adjncy=np.array([0, 0], dtype=VI))
        with pytest.raises(ValueError, match="self-loop"):
            validate(g)

    def test_nonpositive_weight(self):
        g = self._graph(ewgts=np.array([1.0, 0.0], dtype=WT))
        with pytest.raises(ValueError, match="weight"):
            validate(g)

    def test_asymmetric_weight(self):
        g = self._graph(ewgts=np.array([1.0, 2.0], dtype=WT))
        with pytest.raises(ValueError, match="symmetric"):
            validate(g)

    def test_missing_reverse_edge(self):
        g = CSRGraph(
            np.array([0, 1, 1], dtype=VI),
            np.array([1], dtype=VI),
            np.array([1.0], dtype=WT),
            np.array([1.0, 1.0], dtype=WT),
        )
        with pytest.raises(ValueError):
            validate(g)

    def test_duplicate_in_row(self):
        g = CSRGraph(
            np.array([0, 2, 4], dtype=VI),
            np.array([1, 1, 0, 0], dtype=VI),
            np.ones(4, dtype=WT),
            np.ones(2, dtype=WT),
        )
        with pytest.raises(ValueError, match="duplicate"):
            validate(g)


class TestMisc:
    def test_degree_histogram(self, star10):
        hist = degree_histogram(star10)
        assert hist[1] == 10
        assert hist[10] == 1

    def test_laplacian_implicit(self, grid6):
        deg, g = laplacian_csr(grid6)
        assert g is grid6
        assert np.allclose(deg, grid6.weighted_degrees())
