"""Property-based tests (hypothesis) on the core invariants.

Random graphs are generated from edge lists; every coarsener and
construction strategy must uphold the paper's structural invariants on
all of them.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coarsen import (
    available_coarseners,
    get_coarsener,
    hec_parallel,
    hec_serial,
    pointer_jump,
    relabel,
    validate_mapping,
)
from repro.construct import available_constructors, construct_reference, get_constructor
from repro.csr import from_edge_list, validate
from repro.parallel import first_winner_cas, gpu_space, serial_space
from repro.partition import edge_cut, fm_refine, rebalance_exact
from repro.types import VI

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def graphs(draw, min_n=2, max_n=40, connected=False):
    """Random simple undirected weighted graph."""
    n = draw(st.integers(min_n, max_n))
    n_edges = draw(st.integers(0, min(4 * n, 120)))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=n_edges, max_size=n_edges)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=n_edges, max_size=n_edges)
    )
    wgt = draw(
        st.lists(
            st.floats(0.5, 100.0, allow_nan=False), min_size=n_edges, max_size=n_edges
        )
    )
    if connected:
        # add a ring so every vertex is reachable
        src = src + list(range(n))
        dst = dst + [(i + 1) % n for i in range(n)]
        wgt = wgt + [1.0] * n
    return from_edge_list(n, src, dst, wgt)


class TestBuilderProperties:
    @given(graphs())
    @settings(**SETTINGS)
    def test_builder_output_always_valid(self, g):
        validate(g)

    @given(graphs())
    @settings(**SETTINGS)
    def test_symmetry_of_weight_totals(self, g):
        assert g.ewgts.sum() == pytest.approx(2.0 * g.total_edge_weight())


class TestCoarsenerProperties:
    @given(graphs(connected=True), st.sampled_from(sorted(available_coarseners())), st.integers(0, 10))
    @settings(**SETTINGS)
    def test_mapping_always_valid(self, g, name, seed):
        mp = get_coarsener(name)(g, gpu_space(seed))
        validate_mapping(mp)

    @given(graphs(connected=True), st.integers(0, 10))
    @settings(**SETTINGS)
    def test_hec_wave1_equals_serial(self, g, seed):
        a = hec_serial(g, serial_space(seed))
        b = hec_parallel(g, serial_space(seed))
        assert np.array_equal(a.m, b.m)

    @given(graphs(connected=True), st.integers(0, 5))
    @settings(**SETTINGS)
    def test_hem_is_matching(self, g, seed):
        from repro.coarsen import hem_parallel, is_matching

        assert is_matching(hem_parallel(g, gpu_space(seed)))

    @given(graphs(connected=True), st.integers(0, 5))
    @settings(**SETTINGS)
    def test_mis2_distance2(self, g, seed):
        from repro.coarsen import distance2_mis

        mask = distance2_mis(g, gpu_space(seed))
        roots = np.flatnonzero(mask)
        assert len(roots) >= 1
        rootset = set(roots.tolist())
        for r in roots:
            for v in g.neighbors(int(r)):
                assert int(v) not in rootset
                for w in g.neighbors(int(v)):
                    if int(w) != int(r):
                        assert int(w) not in rootset


class TestConstructionProperties:
    @given(
        graphs(connected=True),
        st.sampled_from(sorted(available_constructors())),
        st.sampled_from(["hec", "hem", "gosh"]),
        st.integers(0, 5),
    )
    @settings(**SETTINGS)
    def test_all_strategies_match_reference(self, g, cname, coarsener, seed):
        mp = get_coarsener(coarsener)(g, gpu_space(seed))
        ref = construct_reference(g, mp)
        out = get_constructor(cname)(g, mp, gpu_space(0))
        assert np.array_equal(out.xadj, ref.xadj)
        assert np.array_equal(out.adjncy, ref.adjncy)
        assert np.allclose(out.ewgts, ref.ewgts)

    @given(graphs(connected=True), st.integers(0, 5))
    @settings(**SETTINGS)
    def test_weight_conservation(self, g, seed):
        mp = hec_parallel(g, gpu_space(seed))
        out = get_constructor("sort")(g, mp, gpu_space(0))
        src, dst, w = g.to_coo()
        intra = w[mp.m[src] == mp.m[dst]].sum() / 2.0
        assert out.total_edge_weight() == pytest.approx(
            g.total_edge_weight() - intra
        )
        assert out.total_vertex_weight() == pytest.approx(g.total_vertex_weight())


class TestMappingHelperProperties:
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=60))
    @settings(**SETTINGS)
    def test_relabel_preserves_partition(self, vals):
        arr = np.array(vals, dtype=VI)
        out, n_c = relabel(arr)
        assert n_c == len(set(vals))
        assert out.max() == n_c - 1
        # same-value pairs stay same, different stay different
        for i in range(len(vals)):
            for j in range(i + 1, len(vals)):
                assert (vals[i] == vals[j]) == (out[i] == out[j])

    @given(st.integers(2, 60), st.integers(0, 100))
    @settings(**SETTINGS)
    def test_pointer_jump_forest(self, n, seed):
        rng = np.random.default_rng(seed)
        # random forest: each vertex points to a lower id (or itself)
        m = np.array([rng.integers(0, i + 1) for i in range(n)], dtype=VI)
        out = pointer_jump(m)
        # all outputs are roots, and reachable from the input
        assert np.all(m[out] == out)

    @given(
        st.integers(1, 30),
        st.lists(st.integers(0, 29), min_size=1, max_size=40),
    )
    @settings(**SETTINGS)
    def test_first_winner_unique_per_location(self, n, targets):
        arr = np.full(30, -1, dtype=VI)
        idx = np.array(targets, dtype=VI)
        desired = np.arange(len(idx), dtype=VI)
        won = first_winner_cas(arr, idx, desired, -1)
        # exactly one winner per distinct location
        assert won.sum() == len(set(targets))
        for k in np.flatnonzero(won):
            assert arr[idx[k]] == desired[k]


class TestFMProperties:
    @given(graphs(connected=True, min_n=4), st.integers(0, 5))
    @settings(**SETTINGS)
    def test_fm_never_worsens_balanced(self, g, seed):
        part = (np.arange(g.n) % 2).astype(np.int8)
        before = edge_cut(g, part)
        out = fm_refine(g, part, gpu_space(seed))
        assert edge_cut(g, out) <= before + 1e-9

    @given(graphs(connected=True, min_n=4), st.integers(0, 5))
    @settings(**SETTINGS)
    def test_rebalance_terminates_and_helps(self, g, seed):
        rng = np.random.default_rng(seed)
        part = (rng.random(g.n) < 0.2).astype(np.int8)
        out = rebalance_exact(g, part, gpu_space(0))
        w0 = abs(np.sum(np.where(part == 0, g.vwgts, -g.vwgts)))
        w1 = abs(np.sum(np.where(out == 0, g.vwgts, -g.vwgts)))
        assert w1 <= w0
