"""Benchmark harness: reporting helpers and experiment runners."""

import math

import numpy as np
import pytest

from repro.bench import (
    corpus_graph,
    format_table,
    geomean,
    median,
    ratio,
    run_coarsening,
    run_partition,
    space_for,
)
from repro.parallel import SimulatedOOM

from tests.conftest import random_connected


class TestReport:
    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([2, 2, 2]) == pytest.approx(2.0)

    def test_geomean_skips_bad(self):
        assert geomean([4.0, None, float("nan"), 1.0]) == pytest.approx(2.0)
        assert math.isnan(geomean([]))

    def test_median(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 2, 3]) == 2.5
        assert median([None, 5]) == 5

    def test_ratio(self):
        assert ratio(6, 3) == 2
        assert ratio(None, 3) is None
        assert ratio(3, None) is None
        assert ratio(1, 0) is None

    def test_format_table(self):
        rows = [{"g": "a", "x": 1.5}, {"g": "b", "x": None}]
        out = format_table(rows, [("g", "Graph", "s"), ("x", "X", ".2f")], title="T")
        assert "T" in out
        assert "1.50" in out
        assert "OOM" in out


class TestRunners:
    def test_space_for(self):
        assert space_for("gpu").machine.is_gpu
        assert not space_for("cpu").machine.is_gpu
        with pytest.raises(ValueError):
            space_for("tpu")

    def test_corpus_graph(self):
        g, spec = corpus_graph("ppa")
        assert g.name == "ppa"
        assert spec.name == "ppa"

    def test_run_coarsening_fields(self):
        g = random_connected(200, 350, seed=1).with_name("t")
        r = run_coarsening(g, None, machine="gpu")
        assert not r["oom"]
        assert r["total_s"] > 0
        assert r["total_s"] >= r["compute_s"]
        assert 0 <= r["grco_pct"] <= 100
        assert r["levels"] >= 2
        assert r["cr"] > 1

    def test_run_coarsening_deterministic(self):
        g = random_connected(150, 250, seed=2).with_name("t")
        a = run_coarsening(g, None, machine="gpu", seed=5)
        b = run_coarsening(g, None, machine="gpu", seed=5)
        assert a["total_s"] == b["total_s"]

    def test_cpu_has_no_transfer(self):
        g = random_connected(150, 250, seed=3).with_name("t")
        r = run_coarsening(g, None, machine="cpu")
        assert r["transfer_s"] == 0.0

    def test_run_partition_fields(self):
        g = random_connected(200, 350, seed=4).with_name("t")
        r = run_partition(g, None, machine="gpu", refinement="fm")
        assert not r["oom"]
        assert r["cut"] >= 0
        assert 0 <= r["coarsen_pct"] <= 100
        assert r["total_s"] == pytest.approx(r["coarsen_s"] + r["refine_s"])

    def test_run_partition_reports_peak_mem(self):
        g, spec = corpus_graph("ppa")
        r = run_partition(g, spec, machine="gpu", refinement="spectral", oom=True)
        assert not r["oom"]
        assert r["peak_mem"] > 0

    def test_runners_carry_closed_traces(self):
        g = random_connected(200, 350, seed=6).with_name("t")
        for r in (
            run_coarsening(g, None, machine="gpu"),
            run_partition(g, None, machine="gpu", refinement="spectral"),
        ):
            tr = r["trace"]
            assert tr.root.end_s is not None  # closed
            assert tr.total_seconds() == pytest.approx(r["total_s"], abs=1e-9)

    def test_oom_reported_not_raised(self):
        g, spec = corpus_graph("ic04")
        r = run_coarsening(g, spec, machine="gpu", coarsener="hem", oom=True)
        assert r["oom"] is True
        assert r["total_s"] is None
        assert r["trace"].root.end_s is not None  # trace survives the OOM

    def test_write_trace_and_results(self, tmp_path):
        from repro.bench import write_results, write_trace

        g = random_connected(150, 250, seed=8).with_name("t")
        r = run_coarsening(g, None, machine="gpu")
        path = write_trace(r, tmp_path)
        assert path is not None and path.exists()
        assert path.name.endswith(".trace.json")
        results = write_results([r], tmp_path)
        rows = __import__("json").loads(results.read_text())
        assert rows[0]["graph"] == "t" and "hierarchy" not in rows[0]


class TestExperimentsSmoke:
    def test_table1(self):
        from repro.bench.experiments import table1

        rows, summary = table1()
        assert len(rows) == 20
        assert summary["split_holds"]

    def test_ablation_dedup_pays_on_skewed(self):
        """The degree-based dedup optimization must pay on skewed graphs.

        The paper's 25.7x (kron21) needs paper-scale hub bins; at our
        ~1/1000 scale the effect is 1.3-3x and grows with hub size.
        """
        from repro.bench.experiments import ablation_dedup

        assert ablation_dedup(graph="Orkut")["speedup"] > 1.5
        assert ablation_dedup(graph="kron21")["speedup"] > 1.1

    def test_ablation_dedup_noop_on_regular(self):
        from repro.bench.experiments import ablation_dedup

        out = ablation_dedup(graph="HV15R")
        assert out["speedup"] == 1.0  # heuristic never engages on meshes


class TestWallclockBaseline:
    def _entry(self, total):
        return {
            "config": {"machine": "gpu", "coarsener": "hec",
                       "constructor": "sort", "seed": 0},
            "per_graph_best_sum_s": total,
        }

    def test_merge_creates_schema2(self, tmp_path):
        import json

        from repro.bench import merge_wallclock_file, wallclock_key, wallclock_reference

        path = tmp_path / "wall.json"
        key = wallclock_key("gpu", "hec", "sort", 0)
        merge_wallclock_file(path, key, self._entry(1.5))
        doc = json.loads(path.read_text())
        assert doc["schema"] == 2
        assert wallclock_reference(doc, key)["per_graph_best_sum_s"] == 1.5

    def test_merge_accumulates_configs(self, tmp_path):
        import json

        from repro.bench import merge_wallclock_file, wallclock_key

        path = tmp_path / "wall.json"
        merge_wallclock_file(path, wallclock_key("gpu", "hec", "sort", 0), self._entry(1.0))
        merge_wallclock_file(path, wallclock_key("cpu", "hec", "sort", 0), self._entry(2.0))
        merge_wallclock_file(path, wallclock_key("gpu", "hem", "sort", 0), self._entry(3.0))
        doc = json.loads(path.read_text())
        assert set(doc["configs"]) == {"gpu:hec:sort:s0", "cpu:hec:sort:s0", "gpu:hem:sort:s0"}

    def test_merge_adopts_legacy_schema1(self, tmp_path):
        import json

        from repro.bench import merge_wallclock_file, wallclock_key, wallclock_reference

        path = tmp_path / "wall.json"
        legacy = self._entry(0.19)  # schema-1: one top-level config dict
        path.write_text(json.dumps(legacy))
        # the legacy file gates its own key before any migration
        assert wallclock_reference(legacy, "gpu:hec:sort:s0") is legacy
        assert wallclock_reference(legacy, "cpu:hec:sort:s0") is None
        merge_wallclock_file(path, wallclock_key("cpu", "hec", "sort", 0), self._entry(2.0))
        doc = json.loads(path.read_text())
        assert doc["configs"]["gpu:hec:sort:s0"]["per_graph_best_sum_s"] == 0.19
        assert doc["configs"]["cpu:hec:sort:s0"]["per_graph_best_sum_s"] == 2.0

    def test_replace_same_key(self, tmp_path):
        import json

        from repro.bench import merge_wallclock_file

        path = tmp_path / "wall.json"
        merge_wallclock_file(path, "gpu:hec:sort:s0", self._entry(1.0))
        merge_wallclock_file(path, "gpu:hec:sort:s0", self._entry(9.0))
        doc = json.loads(path.read_text())
        assert doc["configs"]["gpu:hec:sort:s0"]["per_graph_best_sum_s"] == 9.0

    def test_parallel_runs_gate_against_their_own_key(self):
        from repro.bench import wallclock_key

        assert wallclock_key("gpu", "hec", "sort", 0) == "gpu:hec:sort:s0"
        assert wallclock_key("gpu", "hec", "sort", 0, jobs=1) == "gpu:hec:sort:s0"
        assert wallclock_key("gpu", "hec", "sort", 0, jobs=2) == "gpu:hec:sort:s0:j2"
