"""Incremental hierarchy patching: correctness vs reference contraction,
quality and cost gates vs a from-scratch rebuild, determinism, early
exit, the vw-only fast path, tape replay, and the coarsen_multilevel
delta wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coarsen.incremental import (
    COST_RATIO_GATE,
    QUALITY_TOL,
    patch_hierarchy,
)
from repro.coarsen.multilevel import coarsen_multilevel
from repro.csr import from_edge_list, validate
from repro.csr.update import apply_edges
from repro.generators.mesh import grid2d
from repro.parallel.cost import CostLedger
from repro.parallel.execspace import ExecSpace
from repro.parallel.machine import RYZEN32_CPU
from repro.partition.multilevel import multilevel_bisect
from repro.trace.tape import Tape


def space(seed: int = 0) -> ExecSpace:
    return ExecSpace(RYZEN32_CPU, np.random.default_rng(seed), CostLedger())


def secs(sp: ExecSpace) -> float:
    return RYZEN32_CPU.ledger_seconds(sp.ledger)


def mesh_graph():
    """Weighted 2-D mesh: the bounded-degree regime the patch targets."""
    rng = np.random.default_rng(7)
    g0 = grid2d(120, 90, name="mesh")
    es, ed = g0.edge_sources(), np.asarray(g0.adjncy)
    keep = es < ed
    w = rng.uniform(0.5, 4.0, int(keep.sum()))
    return from_edge_list(g0.n, es[keep], ed[keep], w, name="mesh")


def mesh_batch(g, rng, n_edges=30):
    au = rng.integers(0, g.n, n_edges)
    av = rng.integers(0, g.n, n_edges)
    ok = au != av
    aw = rng.uniform(0.5, 4.0, n_edges)[ok]
    eidx = rng.choice(g.m_directed, n_edges, replace=False)
    return (
        (au[ok], av[ok], aw),
        (g.edge_sources()[eidx], np.asarray(g.adjncy)[eidx]),
    )


@pytest.fixture(scope="module")
def patched_vs_full():
    """One shared scenario: base build, one batch, patch and rebuild."""
    g = mesh_graph()
    base = coarsen_multilevel(g, space())
    add, remove = mesh_batch(g, np.random.default_rng(11))
    g1, delta = apply_edges(g, add=add, remove=remove)

    sp_full = space()
    full = coarsen_multilevel(g1, sp_full)
    sp_patch = space()
    patch = patch_hierarchy(base, g1, delta, sp_patch)
    return {
        "g": g, "g1": g1, "delta": delta, "base": base,
        "full": full, "patch": patch,
        "cost_full": secs(sp_full), "cost_patch": secs(sp_patch),
    }


def assert_hierarchy_equal(a, b):
    assert len(a.graphs) == len(b.graphs)
    for ga, gb in zip(a.graphs, b.graphs):
        np.testing.assert_array_equal(ga.xadj, gb.xadj)
        np.testing.assert_array_equal(ga.adjncy, gb.adjncy)
        np.testing.assert_array_equal(ga.ewgts, gb.ewgts)
        np.testing.assert_array_equal(ga.vwgts, gb.vwgts)
    for ma, mb in zip(a.mappings, b.mappings):
        np.testing.assert_array_equal(ma.m, mb.m)
        assert ma.n_c == mb.n_c


class TestPatchCorrectness:
    def test_levels_match_reference_contraction(self, patched_vs_full):
        """Every patched level is exactly the contraction of the level
        below it by the patched mapping — clean-row sharing and the
        localized rebuild never diverge from first principles."""
        patch, g1 = patched_vs_full["patch"], patched_vs_full["g1"]
        for g in patch.graphs:
            validate(g)
        total_vw = float(np.sum(g1.vwgts))
        for lvl, mp in enumerate(patch.mappings):
            fine, coarse = patch.graphs[lvl], patch.graphs[lvl + 1]
            m = np.asarray(mp.m)
            assert m.min() >= 0 and m.max() < coarse.n

            agg = np.zeros(coarse.n)
            np.add.at(agg, m, np.asarray(fine.vwgts))
            assert np.allclose(agg, coarse.vwgts), f"vw mismatch at {lvl}"
            assert abs(float(np.sum(coarse.vwgts)) - total_vw) < 1e-6

            nn = np.int64(coarse.n)
            cu = m[fine.edge_sources()]
            cv = m[np.asarray(fine.adjncy)]
            cross = cu != cv
            key = cu[cross] * nn + cv[cross]
            order = np.argsort(key, kind="stable")
            k = key[order]
            w = np.asarray(fine.ewgts)[cross][order]
            heads = np.ones(len(k), dtype=bool)
            heads[1:] = k[1:] != k[:-1]
            first = np.flatnonzero(heads)
            ref_key = k[heads]
            ref_w = np.add.reduceat(w, first) if len(first) else w
            got_key = (
                coarse.edge_sources() * nn + np.asarray(coarse.adjncy)
            )
            np.testing.assert_array_equal(got_key, ref_key,
                                          err_msg=f"adjacency at {lvl}")
            assert np.allclose(np.asarray(coarse.ewgts), ref_w), \
                f"edge weights at {lvl}"

    def test_quality_within_declared_tolerance(self, patched_vs_full):
        g1 = patched_vs_full["g1"]
        full, patch = patched_vs_full["full"], patched_vs_full["patch"]
        res_f = multilevel_bisect(g1, space(), refinement="fm",
                                  hierarchy=full)
        res_p = multilevel_bisect(g1, space(), refinement="fm",
                                  hierarchy=patch)
        cut_rel = abs(res_p.cut - res_f.cut) / max(res_f.cut, 1e-12)
        imb_abs = abs(res_p.stats["imbalance"] - res_f.stats["imbalance"])
        cr_rel = abs(
            patch.coarsening_ratio() - full.coarsening_ratio()
        ) / max(full.coarsening_ratio(), 1e-12)
        assert cut_rel <= QUALITY_TOL["cut_rel"]
        assert imb_abs <= QUALITY_TOL["imbalance_abs"]
        assert cr_rel <= QUALITY_TOL["cr_rel"]

    def test_cost_ratio_within_gate(self, patched_vs_full):
        ratio = patched_vs_full["cost_patch"] / patched_vs_full["cost_full"]
        assert ratio <= COST_RATIO_GATE

    def test_patch_is_byte_deterministic(self, patched_vs_full):
        again_sp = space()
        again = patch_hierarchy(
            patched_vs_full["base"], patched_vs_full["g1"],
            patched_vs_full["delta"], again_sp,
        )
        assert_hierarchy_equal(patched_vs_full["patch"], again)
        assert secs(again_sp) == patched_vs_full["cost_patch"]

    def test_frontier_stats_reported(self, patched_vs_full):
        patch = patched_vs_full["patch"]
        assert patch.stats["coarsener"] == "hec_delta"
        per_level = patch.stats["per_level"]
        assert patch.stats["frontier_total"] == sum(
            s.get("frontier", 0) for s in per_level
        )
        # the first level's frontier is bounded by the touched rows plus
        # their dissolved aggregates' members — localized, not global
        assert 0 < per_level[0]["frontier"] < patched_vs_full["g1"].n // 4


class TestEarlyExitAndFastPaths:
    def test_empty_delta_adopts_base_verbatim(self):
        g = mesh_graph()
        base = coarsen_multilevel(g, space())
        _, empty = apply_edges(g)  # no adds, no removes
        assert empty.empty
        sp = space()
        p = patch_hierarchy(base, g, empty, sp)
        assert p.stats["early_exit_level"] == 0
        # adopted levels are the base objects, not copies
        for lvl in range(1, base.levels):
            assert p.graphs[lvl] is base.graphs[lvl]
        assert secs(sp) < 1e-6

    def test_delta_that_dies_out_exits_early(self):
        """An intra-aggregate edge add never reaches the coarse graph:
        the patch proves it at level 0 and adopts everything above."""
        g = mesh_graph()
        base = coarsen_multilevel(g, space())
        m0 = np.asarray(base.mappings[0].m)
        # two vertices of the same level-0 aggregate, currently unlinked
        agg = np.flatnonzero(np.bincount(m0) >= 3)[0]
        members = np.flatnonzero(m0 == agg)
        pair = None
        for u in members:
            row = set(np.asarray(g.adjncy[g.xadj[u]:g.xadj[u + 1]]).tolist())
            for v in members:
                if v != u and int(v) not in row:
                    pair = (int(u), int(v))
                    break
            if pair:
                break
        assert pair is not None
        g1, delta = apply_edges(g, add=([pair[0]], [pair[1]], [0.01]))
        assert not delta.empty
        sp = space()
        p = patch_hierarchy(base, g1, delta, sp)
        # the light intra-aggregate edge flips no heavy-neighbour choice
        # and is filtered by the cross mask: the delta dies at level 1
        assert p.stats["early_exit_level"] >= 1
        assert p.graphs[-1] is base.graphs[-1]
        for gg in p.graphs:
            validate(gg)
        assert secs(sp) < patched_vs_full_cost_floor()

    def test_vw_only_fast_path(self):
        """A satellite vertex hopping between aggregates with identical
        coarse adjacency exercises the vertex-weight-only channel."""
        g = dumbbell_graph(60)
        base = coarsen_multilevel(g, space())
        assert base.levels >= 3
        k = 3  # move block 3's satellite from the a-side to the b-side
        a0, b0, s = 5 * k + 0, 5 * k + 2, 5 * k + 4
        g1, delta = apply_edges(g, add=([s], [b0], [5.0]),
                                remove=([s], [a0]))
        patch = patch_hierarchy(base, g1, delta, space())
        lvl1 = patch.stats["per_level"][1]
        assert lvl1.get("vw_fast_path") is True
        assert lvl1["frontier"] == 0 and lvl1["vw_dirty"] == 2
        # the fast path reuses the base level's arrays outright
        assert patch.graphs[2].adjncy is base.graphs[2].adjncy
        for gg in patch.graphs:
            validate(gg)
        for lvl, mp in enumerate(patch.mappings):
            fine, coarse = patch.graphs[lvl], patch.graphs[lvl + 1]
            agg = np.zeros(coarse.n)
            np.add.at(agg, np.asarray(mp.m), np.asarray(fine.vwgts))
            assert np.allclose(agg, coarse.vwgts)
        # structurally identical to the from-scratch rebuild here: the
        # hop is deterministic and adjacency never changed
        full = coarsen_multilevel(g1, space())
        assert [h.n for h in patch.graphs] == [h.n for h in full.graphs]


class TestWiring:
    def test_coarsen_multilevel_delta_mode(self, patched_vs_full):
        via = coarsen_multilevel(
            patched_vs_full["g1"], space(),
            delta=patched_vs_full["delta"], base=patched_vs_full["base"],
        )
        assert via.stats["coarsener"] == "hec_delta"
        assert_hierarchy_equal(via, patched_vs_full["patch"])

    def test_delta_requires_base_and_vice_versa(self, patched_vs_full):
        with pytest.raises(ValueError, match="both delta= and base="):
            coarsen_multilevel(patched_vs_full["g1"], space(),
                               delta=patched_vs_full["delta"])
        with pytest.raises(ValueError, match="both delta= and base="):
            coarsen_multilevel(patched_vs_full["g1"], space(),
                               base=patched_vs_full["base"])

    def test_non_hec_base_rejected(self, patched_vs_full):
        base, g1 = patched_vs_full["base"], patched_vs_full["g1"]
        tampered = dict(base.stats)
        tampered["coarsener"] = "mwm"
        base2 = type(base)(base.graphs, base.mappings, stats=tampered)
        with pytest.raises(ValueError, match="requires an HEC hierarchy"):
            patch_hierarchy(base2, g1, patched_vs_full["delta"], space())

    def test_vertex_count_mismatch_rejected(self, patched_vs_full):
        small = mesh_graph()
        wrong = from_edge_list(small.n + 1, [0], [1], [1.0])
        with pytest.raises(ValueError, match="vertex counts disagree"):
            patch_hierarchy(patched_vs_full["base"], wrong,
                            patched_vs_full["delta"], space())


class TestTapeReplay:
    def test_recorded_patch_replays_bitwise(self, patched_vs_full):
        tape = Tape()
        sp_rec = space()
        patch = patch_hierarchy(
            patched_vs_full["base"], patched_vs_full["g1"],
            patched_vs_full["delta"], sp_rec, tape=tape,
        )
        assert tape.complete
        assert_hierarchy_equal(patch, patched_vs_full["patch"])

        sp_rep = space()
        tape.replay(sp_rep)
        assert secs(sp_rep) == secs(sp_rec)
        # the replayed space's RNG lands in the recorded post-patch
        # state: a later patch on top composes deterministically
        assert sp_rep.rng.bit_generator.state == tape.rng_state


def dumbbell_graph(blocks: int):
    """``blocks`` 5-vertex blocks: two weight-10 pairs, one satellite
    on the a-side, light intra/inter-block links for connectivity."""
    src, dst, w = [], [], []
    for k in range(blocks):
        a0, a1, b0, b1, s = (5 * k + i for i in range(5))
        src += [a0, b0, s, a1]
        dst += [a1, b1, a0, b0]
        w += [10.0, 10.0, 5.0, 0.5]
        if k + 1 < blocks:
            src.append(b1)
            dst.append(5 * (k + 1))
            w.append(0.5)
    return from_edge_list(5 * blocks, src, dst, w, name="dumbbell")


def patched_vs_full_cost_floor() -> float:
    """A loose ceiling for 'nearly free': well under any full level."""
    return 1e-3
