"""Out-of-core storage engine: mapped CSR, budgets, chunked kernels, tiers.

The contract under test is *byte-determinism*: a memmapped graph driven
under a memory budget must produce results, ledger charges, and trace
rollups identical to the unbudgeted in-memory run, and tier artifacts
must regenerate bit-for-bit from (base, tier, seed) alone.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np
import pytest

from repro.bench.harness import run_coarsening
from repro.construct import construct_sort
from repro.csr import CSRGraph
from repro.csr import validation as csr_validation
from repro.generators import corpus
from repro.storage import budget as budget_mod
from repro.storage import chunked, mapped
from repro.storage.budget import MemoryBudget, parse_budget

from tests.conftest import random_connected, star_graph


def skewed_graph(seed=2):
    """Star-heavy graph: trips the skew-optimised construction path."""
    base = star_graph(400)
    rng = np.random.default_rng(seed)
    from repro.csr.build import from_edge_list
    ex = rng.integers(0, 401, size=(300, 2))
    keep = ex[:, 0] != ex[:, 1]
    src = np.concatenate([np.zeros(400, dtype=int), ex[keep, 0]])
    dst = np.concatenate([np.arange(1, 401), ex[keep, 1]])
    return from_edge_list(401, src, dst, name="skewstar")


def dir_digest(path: Path) -> str:
    """Order-stable digest of every file (name + bytes) under ``path``."""
    h = hashlib.sha256()
    for f in sorted(path.rglob("*")):
        if f.is_file():
            h.update(f.relative_to(path).as_posix().encode())
            h.update(f.read_bytes())
    return h.hexdigest()


class TestParseBudget:
    @pytest.mark.parametrize("text,expect", [
        ("4096", 4096), ("64k", 64 * 1024), ("64K", 64 * 1024),
        ("32M", 32 << 20), ("32MiB", 32 << 20), ("2g", 2 << 30),
        ("1kb", 1024),
    ])
    def test_suffixes(self, text, expect):
        assert parse_budget(text) == expect

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_budget("lots")


class TestMappedRoundTrip:
    def test_to_mapped_from_mapped(self, tmp_path, rc100):
        path = tmp_path / "rc100.csrdir"
        rc100.to_mapped(path)
        g2 = CSRGraph.from_mapped(path)
        assert mapped.is_mapped(g2) and not mapped.is_mapped(rc100)
        for a, b in zip(
            (rc100.xadj, rc100.adjncy, rc100.ewgts, rc100.vwgts),
            (g2.xadj, g2.adjncy, g2.ewgts, g2.vwgts),
        ):
            np.testing.assert_array_equal(np.asarray(a), np.asarray(b))
        assert g2.name == rc100.name
        assert mapped.mapped_nbytes(g2) > 0

    def test_writer_matches_whole_graph_write(self, tmp_path, rc100):
        whole = tmp_path / "whole.csrdir"
        rc100.to_mapped(whole)
        streamed = tmp_path / "streamed.csrdir"
        xadj = np.asarray(rc100.xadj)
        with mapped.MappedWriter(streamed, name=rc100.name) as w:
            for r0, r1, e0, e1 in chunked.row_windows(xadj, 64):
                w.append_rows(
                    xadj[r0 + 1 : r1 + 1] - xadj[r0:r1],
                    np.asarray(rc100.adjncy[e0:e1]),
                    np.asarray(rc100.ewgts[e0:e1]),
                    np.asarray(rc100.vwgts[r0:r1]),
                )
        assert dir_digest(whole) == dir_digest(streamed)


class TestChunkedPrimitives:
    def test_external_sort_equals_np_sort(self, tmp_path):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 1 << 40, size=5000).astype(np.int64)
        with chunked.SpillArena() as arena:
            spill = arena.create("keys", np.int64)
            for i in range(0, len(data), 700):
                spill.append(data[i : i + 700])
            got = chunked.external_sort(spill.finish(), 512, arena)
            np.testing.assert_array_equal(np.asarray(got[:]), np.sort(data))

    def test_unit_runs_stream(self):
        rng = np.random.default_rng(1)
        keys = np.sort(rng.integers(0, 500, size=4000).astype(np.int64))
        distinct, counts = chunked.unit_runs_stream(keys, 257)
        want_d, want_c = np.unique(keys, return_counts=True)
        np.testing.assert_array_equal(np.asarray(distinct[:]), want_d)
        np.testing.assert_array_equal(np.asarray(counts[:]), want_c)

    def test_weighted_runs_stream(self):
        rng = np.random.default_rng(2)
        n = 3000
        idx_bits = max(1, (n - 1).bit_length())
        keys = np.sort(rng.integers(0, 300, size=n).astype(np.int64))
        packed = (keys << idx_bits) + np.arange(n, dtype=np.int64)
        w = rng.uniform(0.5, 4.0, size=n)
        weights = w[np.asarray(packed) & ((1 << idx_bits) - 1)]
        distinct, sums = chunked.weighted_runs_stream(packed, idx_bits, w, 173)
        want_d, starts = np.unique(keys, return_index=True)
        want_s = np.add.reduceat(w, starts)
        np.testing.assert_array_equal(np.asarray(distinct[:]), want_d)
        np.testing.assert_array_equal(np.asarray(sums[:]), want_s)

    def test_row_windows_cover_rows_exactly(self, rc100):
        xadj = np.asarray(rc100.xadj)
        wins = list(chunked.row_windows(xadj, 16))
        assert wins[0][0] == 0 and wins[-1][1] == rc100.n
        for (a0, a1, e0, e1), (b0, _, f0, _) in zip(wins, wins[1:]):
            assert a1 == b0 and e1 == f0
            assert e0 == xadj[a0] and e1 == xadj[a1]


class TestBudgetedConstructParity:
    """Budgeted construction is byte-identical to the resident path."""

    @pytest.mark.parametrize("weighted", [False, True])
    @pytest.mark.parametrize("skewed", [False, True])
    def test_construct_sort_parity(self, tmp_path, weighted, skewed):
        from repro.coarsen import hec_parallel
        from repro.parallel import gpu_space
        from repro.trace.core import Tracer

        if skewed:
            g = skewed_graph()
        else:
            g = random_connected(300, 500, seed=4, weighted=weighted)

        def one(graph, budget_bytes):
            space = gpu_space(0)
            tr = Tracer("t").attach(space)
            mapping = hec_parallel(graph, space)
            if budget_bytes is None:
                gc = construct_sort(graph, mapping, space)
            else:
                with budget_mod.limit(budget_bytes):
                    gc = construct_sort(graph, mapping, space)
            tr.close()
            return gc, tr.to_dict()

        ref_g, ref_t = one(g, None)
        path = tmp_path / "g.csrdir"
        g.to_mapped(path)
        gm = CSRGraph.from_mapped(path)
        got_g, got_t = one(gm, 32 * 1024)

        for a, b in zip(
            (ref_g.xadj, ref_g.adjncy, ref_g.ewgts, ref_g.vwgts),
            (got_g.xadj, got_g.adjncy, got_g.ewgts, got_g.vwgts),
        ):
            np.testing.assert_array_equal(np.asarray(a), np.asarray(b))
        assert ref_t == got_t

    def test_budget_engaged_and_planned_bound(self, tmp_path):
        g = random_connected(20_000, 60_000, seed=7)
        path = tmp_path / "g.csrdir"
        g.to_mapped(path)
        gm = CSRGraph.from_mapped(path)
        b = MemoryBudget(resident_bytes=256 * 1024)
        with budget_mod.limit(b):
            run_coarsening(gm, machine="gpu", coarsener="hec",
                           constructor="sort", seed=0)
        assert b.engaged > 0
        assert b.peak_planned <= b.resident_bytes
        # the budget is smaller than the edge volume it processed
        assert b.resident_bytes < gm.m_directed * 8

    def test_run_coarsening_full_parity(self, tmp_path):
        """End-to-end: results, trace rollups, hierarchy all byte-equal."""
        g = random_connected(500, 900, seed=9)
        ref = run_coarsening(g, seed=0)
        path = tmp_path / "g.csrdir"
        g.to_mapped(path)
        gm = CSRGraph.from_mapped(path)
        with budget_mod.limit(256 * 1024):
            got = run_coarsening(gm, seed=0)

        drop = {"trace", "hierarchy"}
        assert {k: v for k, v in ref.items() if k not in drop} == \
               {k: v for k, v in got.items() if k not in drop}
        assert ref["trace"].to_dict() == got["trace"].to_dict()
        for ga, gb in zip(ref["hierarchy"].graphs, got["hierarchy"].graphs):
            for a, b in zip(
                (ga.xadj, ga.adjncy, ga.ewgts, ga.vwgts),
                (gb.xadj, gb.adjncy, gb.ewgts, gb.vwgts),
            ):
                np.testing.assert_array_equal(np.asarray(a), np.asarray(b))


class TestChunkedValidation:
    """Windowed find_defects matches the wide-window findings exactly."""

    def corrupt_cases(self):
        g = random_connected(120, 200, seed=11)
        xadj = np.asarray(g.xadj).copy()
        adj = np.asarray(g.adjncy).copy()
        w = np.asarray(g.ewgts).copy()
        vw = np.asarray(g.vwgts).copy()

        def variant(**kw):
            d = {"xadj": xadj, "adjncy": adj, "ewgts": w, "vwgts": vw}
            d.update(kw)
            return CSRGraph(d["xadj"], d["adjncy"], d["ewgts"], d["vwgts"],
                            name="corrupt")

        loop = adj.copy()
        loop[xadj[5]] = 5
        rng_bad = adj.copy()
        rng_bad[len(adj) // 2] = 10_000
        unsorted = adj.copy()
        r = next(i for i in range(len(xadj) - 1) if xadj[i + 1] - xadj[i] >= 2)
        unsorted[xadj[r]], unsorted[xadj[r] + 1] = (
            unsorted[xadj[r] + 1].copy(), unsorted[xadj[r]].copy())
        dup = adj.copy()
        dup[xadj[r] + 1] = dup[xadj[r]]
        badw = w.copy()
        badw[7] = -1.0
        asym = w.copy()
        asym[xadj[3]] += 0.5
        return [
            variant(),
            variant(adjncy=loop),
            variant(adjncy=rng_bad),
            variant(adjncy=unsorted),
            variant(adjncy=dup),
            variant(ewgts=badw),
            variant(ewgts=asym),
        ]

    def test_window_size_invariant(self, monkeypatch):
        cases = self.corrupt_cases()
        wide = [csr_validation.find_defects(g) for g in cases]
        monkeypatch.setattr(csr_validation, "_WINDOW", 32)
        narrow = [csr_validation.find_defects(g) for g in cases]
        assert wide == narrow
        assert wide[0] == []

    def test_mapped_graph_validates(self, tmp_path, rc100):
        path = tmp_path / "v.csrdir"
        rc100.to_mapped(path)
        gm = CSRGraph.from_mapped(path)
        assert csr_validation.find_defects(gm) == []


class TestTiers:
    @pytest.fixture(autouse=True)
    def fresh_cache(self, tmp_path, monkeypatch):
        monkeypatch.setattr(corpus, "_CACHE_DIR", tmp_path / "cache")

    def test_tier_scales_and_validates(self):
        g0, _ = corpus.load("ppa", 0)
        g, spec = corpus.load("ppa@x10", 0)
        assert mapped.is_mapped(g)
        assert g.name == "ppa@x10" == spec.name
        assert abs(g.n / g0.n - 10) < 0.1
        g.validate()
        from repro.csr.components import connected_components
        count, _labels = connected_components(g)
        assert count == 1  # stitched into one component

    def artifact_digest(self) -> str:
        """Digest of the tier ``.csrdir`` artifact (cache bookkeeping —
        timestamps, stats — is legitimately non-deterministic)."""
        dirs = sorted(Path(corpus._CACHE_DIR).glob("*.csrdir"))
        assert len(dirs) == 1
        return dir_digest(dirs[0])

    def test_tier_regenerates_byte_identically(self, tmp_path, monkeypatch):
        corpus.load("citation@x10", 0)
        d1 = self.artifact_digest()
        monkeypatch.setattr(corpus, "_CACHE_DIR", tmp_path / "cache2")
        corpus.load("citation@x10", 0)
        d2 = self.artifact_digest()
        assert d1 == d2

    def test_base_tier_results_match_mapped(self, tmp_path):
        """Base-tier coarsening is byte-identical run from a mapped copy."""
        g, _ = corpus.load("citation", 0)
        ref = run_coarsening(g, seed=0)
        path = tmp_path / "c.csrdir"
        g.to_mapped(path)
        got = run_coarsening(CSRGraph.from_mapped(path), seed=0)
        drop = {"trace", "hierarchy"}
        assert {k: v for k, v in ref.items() if k not in drop} == \
               {k: v for k, v in got.items() if k not in drop}
        assert ref["trace"].to_dict() == got["trace"].to_dict()

    def test_unknown_tier_rejected(self):
        with pytest.raises(KeyError):
            corpus.load("ppa@x7", 0)

    def test_memory_scale_clamped(self):
        g, spec = corpus.load("ppa@x10", 0)
        assert corpus.memory_scale(g, spec) >= 1.0
