"""Mapping utilities and the Algorithm-1 multilevel driver."""

import numpy as np
import pytest

from repro.coarsen import (
    CoarseMapping,
    coarsen_multilevel,
    is_matching,
    mapping_quality,
    pointer_jump,
    relabel,
    validate_mapping,
)
from repro.csr import validate
from repro.parallel import MemoryTracker, SimulatedOOM, gpu_space
from repro.types import VI

from tests.conftest import grid_graph, random_connected, star_graph


class TestRelabel:
    def test_compresses(self):
        m, n_c = relabel(np.array([10, 5, 10, 7]))
        assert n_c == 3
        assert m[0] == m[2]
        assert len(set(m.tolist())) == 3
        assert m.max() == 2

    def test_idempotent(self):
        m1, _ = relabel(np.array([3, 1, 3]))
        m2, _ = relabel(m1)
        assert np.array_equal(m1, m2)

    def test_charges(self):
        sp = gpu_space(0)
        relabel(np.arange(100), sp)
        assert sp.ledger.phase("mapping").sort_key_ops > 0


class TestPointerJump:
    def test_chains_resolve(self):
        m = np.array([1, 2, 2, 2], dtype=VI)  # 0 -> 1 -> 2 (root)
        out = pointer_jump(m)
        assert list(out) == [2, 2, 2, 2]

    def test_deep_chain(self):
        n = 100
        m = np.arange(1, n + 1, dtype=VI)
        m[-1] = n - 1  # single root at the end
        out = pointer_jump(m)
        assert np.all(out == n - 1)

    def test_cycle_raises(self):
        with pytest.raises(RuntimeError, match="cycle"):
            pointer_jump(np.array([1, 0], dtype=VI))


class TestMappingType:
    def test_aggregate_sizes(self):
        mp = CoarseMapping(np.array([0, 0, 1]), 2)
        assert list(mp.aggregate_sizes()) == [2, 1]
        assert mp.coarsening_ratio() == pytest.approx(1.5)

    def test_validate_rejects_sentinel(self):
        with pytest.raises(ValueError, match="unmapped"):
            validate_mapping(CoarseMapping(np.array([0, -1]), 1))

    def test_validate_rejects_gap(self):
        with pytest.raises(ValueError, match="surjective"):
            validate_mapping(CoarseMapping(np.array([0, 2]), 3))

    def test_validate_rejects_range(self):
        with pytest.raises(ValueError, match="out of range"):
            validate_mapping(CoarseMapping(np.array([0, 5]), 2))

    def test_empty_ok(self):
        validate_mapping(CoarseMapping(np.array([], dtype=VI), 0))

    def test_is_matching(self):
        assert is_matching(CoarseMapping(np.array([0, 0, 1]), 2))
        assert not is_matching(CoarseMapping(np.array([0, 0, 0]), 1))

    def test_quality_fields(self, rc100):
        from repro.coarsen import hec_parallel

        mp = hec_parallel(rc100, gpu_space(0))
        q = mapping_quality(rc100, mp)
        assert 0 <= q["contracted_fraction"] <= 1
        assert q["intra_weight"] + 1e-9 <= q["total_weight"] + 1e-9


class TestMultilevelDriver:
    def test_reaches_cutoff(self):
        g = random_connected(500, 800, seed=1)
        h = coarsen_multilevel(g, gpu_space(0), cutoff=50)
        assert h.coarsest.n <= 50 or h.stats["discarded_overshoot"]
        assert h.levels >= 2

    def test_every_level_valid(self):
        g = random_connected(300, 500, seed=2)
        h = coarsen_multilevel(g, gpu_space(1))
        for graph in h.graphs:
            validate(graph)
        for mp in h.mappings:
            validate_mapping(mp)

    def test_vertex_weight_conserved(self):
        g = random_connected(300, 500, seed=3)
        h = coarsen_multilevel(g, gpu_space(2))
        totals = [graph.total_vertex_weight() for graph in h.graphs]
        assert all(t == pytest.approx(totals[0]) for t in totals)

    def test_edge_weight_conservation(self):
        """W(level k+1) = W(level k) - intra-aggregate weight."""
        g = random_connected(300, 500, seed=4)
        h = coarsen_multilevel(g, gpu_space(3))
        for fine, mp, coarse in zip(h.graphs, h.mappings, h.graphs[1:]):
            src, dst, w = fine.to_coo()
            intra = w[mp.m[src] == mp.m[dst]].sum() / 2.0
            assert coarse.total_edge_weight() == pytest.approx(
                fine.total_edge_weight() - intra
            )

    def test_sizes_monotone(self):
        g = random_connected(500, 900, seed=5)
        h = coarsen_multilevel(g, gpu_space(4))
        ns = [graph.n for graph in h.graphs]
        assert all(a > b for a, b in zip(ns, ns[1:]))

    def test_project_identity(self):
        g = random_connected(200, 300, seed=6)
        h = coarsen_multilevel(g, gpu_space(5))
        x = np.arange(h.coarsest.n, dtype=float)
        fine_x = h.project(x)
        assert len(fine_x) == g.n
        # projection is exactly composition of the mapping arrays
        expected = x
        for mp in reversed(h.mappings):
            expected = expected[mp.m]
        assert np.array_equal(fine_x, expected)

    def test_max_levels_cap(self):
        g = grid_graph(12, 12)
        h = coarsen_multilevel(g, gpu_space(0), max_levels=1)
        assert h.levels == 2

    def test_coarsening_ratio_definition(self):
        g = random_connected(400, 600, seed=7)
        h = coarsen_multilevel(g, gpu_space(6))
        cr = h.coarsening_ratio()
        n0, nl, l = h.graphs[0].n, h.coarsest.n, h.levels
        assert cr == pytest.approx((n0 / nl) ** (1.0 / (l - 1)))

    def test_oom_propagates(self):
        g = random_connected(300, 500, seed=8)
        tracker = MemoryTracker(10.0, algorithm="hec", graph="g")  # 10 bytes
        with pytest.raises(SimulatedOOM):
            coarsen_multilevel(g, gpu_space(0), tracker=tracker)

    def test_transfer_charged_on_gpu_only(self):
        from repro.parallel import cpu_space

        g = random_connected(200, 300, seed=9)
        sp_g = gpu_space(0)
        coarsen_multilevel(g, sp_g)
        assert sp_g.ledger.phase("transfer").transfer_bytes > 0
        sp_c = cpu_space(0)
        coarsen_multilevel(g, sp_c)
        assert sp_c.ledger.phase("transfer").transfer_bytes == 0

    def test_stats_per_level(self):
        g = random_connected(300, 400, seed=10)
        h = coarsen_multilevel(g, gpu_space(1))
        assert len(h.stats["per_level"]) == len(h.mappings)
        assert h.stats["coarsener"] == "hec"

    @pytest.mark.parametrize("constructor", ["sort", "hash", "spgemm", "global_sort"])
    def test_constructors_give_same_hierarchy(self, constructor):
        g = random_connected(300, 450, seed=11)
        base = coarsen_multilevel(g, gpu_space(2), constructor="sort")
        other = coarsen_multilevel(g, gpu_space(2), constructor=constructor)
        assert [x.n for x in base.graphs] == [x.n for x in other.graphs]
        for a, b in zip(base.graphs, other.graphs):
            assert np.array_equal(a.xadj, b.xadj)
            assert np.array_equal(a.adjncy, b.adjncy)
            assert np.allclose(a.ewgts, b.ewgts)
