"""HEC variants, HEM, two-hop, mt-Metis, MIS2, GOSH."""

import numpy as np
import pytest

from repro.coarsen import (
    available_coarseners,
    distance2_mis,
    get_coarsener,
    gosh_coarsen,
    gosh_hec_coarsen,
    hec2,
    hec3,
    hem_parallel,
    hem_serial,
    is_matching,
    match_leaves,
    match_relatives,
    match_twins,
    match_twins_reference,
    mis2_coarsen,
    mtmetis_coarsen,
    validate_mapping,
)
from repro.csr import from_edge_list
from repro.parallel import cpu_space, gpu_space, serial_space
from repro.types import UNMAPPED, VI

from tests.conftest import grid_graph, random_connected, star_graph

ALL_COARSENERS = sorted(available_coarseners())


class TestRegistry:
    def test_expected_algorithms_registered(self):
        assert set(ALL_COARSENERS) == {
            "hec", "hec2", "hec3", "hem", "mtmetis", "mis2", "gosh",
            "gosh_hec", "suitor",
        }

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown coarsener"):
            get_coarsener("nope")


@pytest.mark.parametrize("name", ALL_COARSENERS)
class TestAllCoarseners:
    """Invariants every coarse-mapping algorithm must satisfy."""

    def test_valid_mapping_random(self, name, rc400):
        mp = get_coarsener(name)(rc400, gpu_space(1))
        validate_mapping(mp)

    def test_valid_mapping_grid(self, name, grid6):
        mp = get_coarsener(name)(grid6, gpu_space(2))
        validate_mapping(mp)

    def test_progress_on_random(self, name, rc400):
        mp = get_coarsener(name)(rc400, gpu_space(3))
        assert mp.n_c < rc400.n

    def test_deterministic_per_seed(self, name, rc100):
        a = get_coarsener(name)(rc100, gpu_space(5))
        b = get_coarsener(name)(rc100, gpu_space(5))
        assert np.array_equal(a.m, b.m)

    def test_cpu_space_works(self, name, rc100):
        mp = get_coarsener(name)(rc100, cpu_space(1))
        validate_mapping(mp)


class TestHECVariants:
    def test_hec3_collapses_mutual_pairs(self):
        # heavy mutual pair 0-1; 2 and 3 hang off with light edges
        g = from_edge_list(4, [0, 0, 1], [1, 2, 3], [9.0, 1.0, 1.0])
        for seed in range(4):
            mp = hec3(g, gpu_space(seed))
            assert mp.m[0] == mp.m[1]
            assert mp.stats["mutual_pairs"] >= 1

    def test_hec2_keeps_mutual_pairs_apart(self):
        g = from_edge_list(4, [0, 0, 1], [1, 2, 3], [9.0, 1.0, 1.0])
        mp = hec2(g, gpu_space(0))
        assert mp.m[0] != mp.m[1]

    def test_hec2_slower_coarsening_than_hec3(self, rc400):
        """The 2-cycle collapse is what HEC2 lacks (Section IV-A)."""
        r3 = [hec3(rc400, gpu_space(s)).n_c for s in range(3)]
        r2 = [hec2(rc400, gpu_space(s)).n_c for s in range(3)]
        assert np.mean(r2) >= np.mean(r3)

    def test_hec2_predictable_count(self, rc100):
        """HEC2's coarse count is the number of distinct heavy-targets
        plus isolated vertices — fully determined by H."""
        from repro.coarsen import heavy_neighbors

        mp = hec2(rc100, gpu_space(7))
        h = heavy_neighbors(rc100)
        assert mp.n_c == len(np.unique(h[h >= 0]))


class TestHEM:
    def test_serial_is_matching(self, rc400):
        assert is_matching(hem_serial(rc400, serial_space(0)))

    def test_parallel_is_matching(self, rc400):
        assert is_matching(hem_parallel(rc400, gpu_space(0)))

    def test_ratio_at_most_two(self, rc400):
        mp = hem_parallel(rc400, gpu_space(1))
        assert mp.coarsening_ratio() <= 2.0 + 1e-9

    def test_star_stalls_into_singletons(self, star10):
        """Leaves can never match each other: 1 pair + 9 singletons."""
        mp = hem_parallel(star10, gpu_space(0))
        sizes = mp.aggregate_sizes()
        assert (sizes == 2).sum() == 1
        assert (sizes == 1).sum() == 9

    def test_heaviest_unmatched_preferred(self):
        # path 0-1-2 with heavy 0-1: whichever endpoint is visited first,
        # the result is a matching covering edge (0,1) or — only when 2
        # is visited first and grabs 1 — edge (1,2)
        g = from_edge_list(3, [0, 1], [1, 2], [9.0, 1.0])
        saw_heavy = False
        for seed in range(8):
            mp = hem_serial(g, serial_space(seed))
            pairs = {tuple(sorted(np.flatnonzero(mp.m == c))) for c in range(mp.n_c)}
            assert pairs <= {(0, 1), (2,), (1, 2), (0,)}
            saw_heavy |= (0, 1) in pairs
        assert saw_heavy  # the heavy edge must win in some visit orders


class TestTwoHop:
    def _star_with_leaves(self, k=8):
        return star_graph(k)

    def test_leaves_pair_up(self):
        g = self._star_with_leaves(8)
        m = np.full(g.n, UNMAPPED, dtype=VI)
        m[0] = 0  # hub pre-matched
        counter = np.array([1], dtype=VI)
        got = match_leaves(g, m, counter, gpu_space(0))
        assert got == 8
        sizes = np.bincount(m[1:])
        assert np.all(sizes[sizes > 0] == 2)

    def test_leaves_odd_one_out(self):
        g = self._star_with_leaves(5)
        m = np.full(g.n, UNMAPPED, dtype=VI)
        m[0] = 0
        counter = np.array([1], dtype=VI)
        got = match_leaves(g, m, counter, gpu_space(0))
        assert got == 4
        assert (m == UNMAPPED).sum() == 1

    def test_twins_matched(self):
        # vertices 2 and 3 have identical neighbourhoods {0, 1}
        g = from_edge_list(4, [0, 0, 1, 1], [2, 3, 2, 3])
        m = np.full(4, UNMAPPED, dtype=VI)
        m[0], m[1] = 0, 1
        counter = np.array([2], dtype=VI)
        got = match_twins(g, m, counter, gpu_space(0))
        assert got == 2
        assert m[2] == m[3]

    def test_twins_require_identical_rows(self):
        # 2 ~ {0,1}, 3 ~ {0} : not twins
        g = from_edge_list(4, [0, 0, 1], [2, 3, 2])
        m = np.full(4, UNMAPPED, dtype=VI)
        m[0], m[1] = 0, 1
        counter = np.array([2], dtype=VI)
        match_twins(g, m, counter, gpu_space(0))
        assert m[2] == UNMAPPED or m[2] != m[3]

    def test_relatives_share_intermediary(self):
        # 1 and 2 share neighbour 0 but are not adjacent
        g = from_edge_list(3, [0, 0], [1, 2])
        m = np.full(3, UNMAPPED, dtype=VI)
        m[0] = 0
        counter = np.array([1], dtype=VI)
        got = match_relatives(g, m, counter, gpu_space(0))
        assert got == 2
        assert m[1] == m[2]

    def test_mtmetis_beats_plain_hem_on_star(self, star10):
        hem = hem_parallel(star10, gpu_space(0))
        mtm = mtmetis_coarsen(star10, gpu_space(0))
        assert mtm.n_c < hem.n_c  # leaves got paired
        assert is_matching(mtm)

    def test_mtmetis_stats(self, star10):
        mp = mtmetis_coarsen(star10, gpu_space(0))
        assert "hem_unmatched" in mp.stats
        assert mp.stats.get("leaves", 0) > 0


class TestMIS2:
    def test_roots_distance2_independent(self, rc100):
        mask = distance2_mis(rc100, gpu_space(0))
        roots = set(np.flatnonzero(mask).tolist())
        assert roots
        for r in roots:
            for v in rc100.neighbors(r):
                assert int(v) not in roots  # distance 1
                for w in rc100.neighbors(int(v)):
                    if int(w) != r:
                        assert int(w) not in roots  # distance 2

    def test_maximality(self, rc100):
        """Every vertex is within distance 2 of a root."""
        mask = distance2_mis(rc100, gpu_space(1))
        covered = mask.copy()
        for _ in range(2):
            nxt = covered.copy()
            for u in range(rc100.n):
                if covered[rc100.neighbors(u)].any():
                    nxt[u] = True
            covered = nxt
        assert covered.all()

    def test_most_aggressive(self, rc400):
        """MIS2 coarsens hardest (Table IV: fewest levels)."""
        mis = mis2_coarsen(rc400, gpu_space(0))
        from repro.coarsen import hec_parallel

        hec = hec_parallel(rc400, gpu_space(0))
        assert mis.n_c < hec.n_c

    def test_aggregates_connected_to_root(self, grid6):
        mp = mis2_coarsen(grid6, gpu_space(2))
        validate_mapping(mp)


class TestGOSH:
    def test_hub_never_joins_hub_cluster(self):
        # two hubs (0, 1) sharing leaves; hubs must stay apart
        k = 20
        src = [0] * k + [1] * k + [0]
        dst = list(range(2, 2 + k)) + list(range(2, 2 + k)) + [1]
        g = from_edge_list(2 + k, src, dst)
        mp = gosh_coarsen(g, gpu_space(0))
        assert mp.m[0] != mp.m[1]

    def test_gosh_hec_hub_breaks(self):
        k = 20
        src = [0] * k + [1] * k + [0]
        dst = list(range(2, 2 + k)) + list(range(2, 2 + k)) + [1]
        g = from_edge_list(2 + k, src, dst)
        mp = gosh_hec_coarsen(g, gpu_space(0))
        assert mp.m[0] != mp.m[1]
        assert mp.stats["hub_breaks"] > 0

    def test_gosh_hec_weight_aware(self):
        """The hybrid contracts heavy edges; GOSH cannot see weights."""
        g = from_edge_list(4, [0, 1, 2], [1, 2, 3], [10.0, 1.0, 10.0])
        mp = gosh_hec_coarsen(g, gpu_space(0))
        assert mp.m[0] == mp.m[1]
        assert mp.m[2] == mp.m[3]

    def test_gosh_rounds_bounded(self, rc400):
        mp = gosh_coarsen(rc400, gpu_space(0))
        assert mp.stats["rounds"] < 60

    def test_gosh_capped_absorption(self, grid6):
        from repro.coarsen.gosh import _ABSORB_CAP

        mp = gosh_coarsen(grid6, gpu_space(1))
        # on a low-skew grid no hub exists, so clusters stay small
        assert mp.aggregate_sizes().max() <= _ABSORB_CAP * mp.stats["rounds"] + 1


class TestTwoHopVectorizedEquivalence:
    """The vectorised two-hop kernels must be bit-identical to the loop

    references: same matching array, same pair-id counter, same matched
    count, same ledger charges -- for any seed and interleave."""

    def _prematch(self, g, seed, frac=7):
        rng = np.random.default_rng(seed)
        m = np.full(g.n, UNMAPPED, dtype=VI)
        pre = rng.choice(g.n, size=g.n // frac + 1, replace=False)
        m[pre] = np.arange(len(pre), dtype=VI)
        return m

    def _run_both(self, g, m0, fast, reference):
        outs = []
        for fn in (fast, reference):
            m = m0.copy()
            counter = np.zeros(1, dtype=VI)
            space = serial_space()
            count = fn(g, m, counter, space)
            outs.append((count, m, counter.copy(), space.ledger.total()))
        return outs

    @pytest.mark.parametrize("seed", range(5))
    def test_twins_bit_identical_random(self, seed):
        g = random_connected(300, 260, seed=seed)
        m0 = self._prematch(g, seed)
        (c1, m1, k1, l1), (c2, m2, k2, l2) = self._run_both(
            g, m0, match_twins, match_twins_reference
        )
        assert c1 == c2
        assert np.array_equal(m1, m2)
        assert np.array_equal(k1, k2)
        assert l1 == l2

    def test_twins_bit_identical_star(self):
        # every leaf of a star is a twin of every other leaf: one big
        # group, paired greedily in candidate order
        g = star_graph(41)
        m0 = np.full(g.n, UNMAPPED, dtype=VI)
        m0[0] = 0
        (c1, m1, k1, l1), (c2, m2, k2, l2) = self._run_both(
            g, m0, match_twins, match_twins_reference
        )
        assert c1 == c2 == 40
        assert np.array_equal(m1, m2)
        assert np.array_equal(k1, k2)
        assert l1 == l2

    def test_twins_mixed_degree_groups(self):
        # two twin groups of different degree plus non-twin fillers
        g = from_edge_list(
            8,
            [0, 0, 1, 1, 0, 0, 0, 6],
            [2, 3, 2, 3, 4, 5, 6, 7],
        )
        m0 = np.full(8, UNMAPPED, dtype=VI)
        m0[0], m0[1] = 0, 1
        (c1, m1, k1, _), (c2, m2, k2, _) = self._run_both(
            g, m0, match_twins, match_twins_reference
        )
        assert c1 == c2
        assert np.array_equal(m1, m2)
        assert np.array_equal(k1, k2)

    @pytest.mark.parametrize("seed", range(5))
    def test_pair_by_key_bit_identical(self, seed):
        from repro.coarsen.twohop import _pair_by_key, _pair_by_key_reference

        rng = np.random.default_rng(seed)
        n = 400
        cand = np.arange(n, dtype=VI)
        rng.shuffle(cand)
        keys = rng.integers(0, 60, size=n).astype(VI)  # many duplicate runs
        outs = []
        for fn in (_pair_by_key, _pair_by_key_reference):
            m = np.full(n, UNMAPPED, dtype=VI)
            counter = np.zeros(1, dtype=VI)
            outs.append((fn(cand.copy(), keys.copy(), m, counter), m, counter.copy()))
        (c1, m1, k1), (c2, m2, k2) = outs
        assert c1 == c2 > 0
        assert np.array_equal(m1, m2)
        assert np.array_equal(k1, k2)

    @pytest.mark.parametrize("seed", range(3))
    def test_leaves_and_relatives_still_greedy(self, seed):
        # match_leaves/match_relatives route through the vectorised
        # _pair_by_key; cross-check them against the loop pairing
        from repro.coarsen import twohop

        g = random_connected(200, 60, seed=seed)
        m0 = np.full(g.n, UNMAPPED, dtype=VI)
        results = []
        for pairer in (twohop._pair_by_key, twohop._pair_by_key_reference):
            orig = twohop._pair_by_key
            twohop._pair_by_key = pairer
            try:
                m = m0.copy()
                counter = np.zeros(1, dtype=VI)
                space = serial_space()
                n_leaves = match_leaves(g, m, counter, space)
                n_rel = match_relatives(g, m, counter, space)
                results.append((n_leaves, n_rel, m, counter.copy()))
            finally:
                twohop._pair_by_key = orig
        (a1, b1, m1, k1), (a2, b2, m2, k2) = results
        assert (a1, b1) == (a2, b2)
        assert np.array_equal(m1, m2)
        assert np.array_equal(k1, k2)
