"""Edge cases and failure injection across the pipeline."""

import numpy as np
import pytest

from repro.coarsen import available_coarseners, coarsen_multilevel, get_coarsener, validate_mapping
from repro.csr import from_edge_list, validate
from repro.parallel import MemoryTracker, SimulatedOOM, cpu_space, gpu_space, serial_space
from repro.partition import multilevel_bisect, validate_partition

from tests.conftest import path_graph, random_connected, star_graph


class TestTinyGraphs:
    """Every algorithm must survive degenerate inputs."""

    @pytest.mark.parametrize("name", sorted(available_coarseners()))
    def test_single_edge(self, name):
        g = from_edge_list(2, [0], [1])
        mp = get_coarsener(name)(g, gpu_space(0))
        validate_mapping(mp)
        assert mp.n_c >= 1

    @pytest.mark.parametrize("name", sorted(available_coarseners()))
    def test_triangle(self, name):
        g = from_edge_list(3, [0, 1, 2], [1, 2, 0])
        mp = get_coarsener(name)(g, gpu_space(1))
        validate_mapping(mp)

    @pytest.mark.parametrize("name", sorted(available_coarseners()))
    def test_path2(self, name):
        mp = get_coarsener(name)(path_graph(3), gpu_space(2))
        validate_mapping(mp)

    def test_bisect_tiny(self):
        g = from_edge_list(2, [0], [1])
        for refinement in ("fm", "spectral"):
            res = multilevel_bisect(g, gpu_space(0), refinement=refinement)
            validate_partition(g, res.part)

    def test_coarsen_below_cutoff_noop(self):
        g = path_graph(10)
        h = coarsen_multilevel(g, gpu_space(0), cutoff=50)
        assert h.levels == 1
        assert h.coarsest is g


class TestWeightExtremes:
    def test_huge_weight_spread(self):
        w = [1e-6, 1e6, 1.0, 1e-6]
        g = from_edge_list(5, [0, 1, 2, 3], [1, 2, 3, 4], w)
        from repro.coarsen import hec_serial

        mp = hec_serial(g, serial_space(0))
        validate_mapping(mp)
        # the dominant edge must contract
        assert mp.m[1] == mp.m[2]

    def test_weights_survive_two_levels(self):
        g = random_connected(300, 500, seed=1)
        h = coarsen_multilevel(g, gpu_space(0))
        for graph in h.graphs[1:]:
            validate(graph)
            assert np.all(graph.ewgts >= 1.0)  # sums of unit weights


class TestMachinePortability:
    """The performance-portability contract: same code, both machines,
    valid (seed-dependent but structurally equivalent) results."""

    @pytest.mark.parametrize("name", sorted(available_coarseners()))
    def test_all_algorithms_both_machines(self, name):
        g = random_connected(150, 250, seed=9)
        for mk in (gpu_space, cpu_space, serial_space):
            mp = get_coarsener(name)(g, mk(3))
            validate_mapping(mp)

    def test_hierarchies_comparable_across_machines(self):
        g = random_connected(400, 700, seed=2)
        hg = coarsen_multilevel(g, gpu_space(1))
        hc = coarsen_multilevel(g, cpu_space(1))
        # same algorithm, different schedule: similar depth
        assert abs(hg.levels - hc.levels) <= 2


class TestOOMInjection:
    def test_partition_reports_oom(self):
        g = random_connected(200, 350, seed=3).with_name("t")
        t = MemoryTracker(1.0, algorithm="hec", graph="t")
        with pytest.raises(SimulatedOOM) as e:
            multilevel_bisect(g, gpu_space(0), tracker=t)
        assert e.value.algorithm == "hec"
        assert e.value.demand > e.value.budget

    def test_oom_message_readable(self):
        err = SimulatedOOM("hem", "Orkut", 12.3e9, 11e9)
        assert "hem" in str(err)
        assert "Orkut" in str(err)
        assert "12.3 GB" in str(err)

    def test_budget_exactly_met_is_fine(self):
        t = MemoryTracker(1000.0)
        t.transient(1000.0)  # equal is not over
        assert t.peak == 1000.0


class TestSeedSweeps:
    """Randomised algorithms must be stable across a seed sweep."""

    @pytest.mark.parametrize("seed", range(8))
    def test_hec_multilevel_any_seed(self, seed):
        g = random_connected(250, 400, seed=seed)
        h = coarsen_multilevel(g, gpu_space(seed))
        assert h.coarsest.n <= 50
        for graph in h.graphs:
            validate(graph)

    @pytest.mark.parametrize("seed", range(4))
    def test_fm_partition_any_seed(self, seed):
        g = random_connected(250, 400, seed=seed)
        res = multilevel_bisect(g, gpu_space(seed), refinement="fm")
        validate_partition(g, res.part)
        assert res.stats["imbalance"] <= 1.0 / (g.n // 2) + 1e-9
