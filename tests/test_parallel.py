"""Execution substrate: cost ledger, machines, atomics, primitives, memory."""

import numpy as np
import pytest

from repro.parallel import (
    RYZEN32_CPU,
    TURING_GPU,
    CostLedger,
    KernelCost,
    MemoryTracker,
    SimulatedOOM,
    atomic_min,
    batch_fetch_add,
    cas,
    compact_nonnegative,
    cpu_space,
    exclusive_prefix_sum,
    fetch_add,
    first_winner_cas,
    gen_perm,
    gpu_space,
    segment_max_index,
    segment_sum,
    serial_space,
)
from repro.parallel.memory import construction_workspace, graph_bytes, mapping_workspace


class TestKernelCost:
    def test_add(self):
        a = KernelCost(stream_bytes=10, atomic_ops=2)
        b = KernelCost(stream_bytes=5, launches=1)
        c = a + b
        assert c.stream_bytes == 15
        assert c.atomic_ops == 2
        assert c.launches == 1

    def test_iadd(self):
        a = KernelCost(stream_bytes=10)
        a += KernelCost(stream_bytes=3, flops=7)
        assert a.stream_bytes == 13
        assert a.flops == 7

    def test_scaled(self):
        a = KernelCost(stream_bytes=10, hash_ops=4).scaled(2.5)
        assert a.stream_bytes == 25
        assert a.hash_ops == 10

    def test_as_dict_complete(self):
        d = KernelCost().as_dict()
        assert set(d) >= {"stream_bytes", "random_bytes", "atomic_ops", "launches"}


class TestLedger:
    def test_phases(self):
        led = CostLedger()
        led.charge("mapping", KernelCost(stream_bytes=10))
        led.charge("construction", KernelCost(stream_bytes=20))
        led.charge("mapping", KernelCost(stream_bytes=5))
        assert led.phase("mapping").stream_bytes == 15
        assert led.total().stream_bytes == 35
        assert led.total(exclude=("construction",)).stream_bytes == 15
        assert led.phases() == ["mapping", "construction"]

    def test_unknown_phase_zero(self):
        assert CostLedger().phase("nope").stream_bytes == 0

    def test_merge(self):
        a, b = CostLedger(), CostLedger()
        a.charge("x", KernelCost(flops=1))
        b.charge("x", KernelCost(flops=2))
        b.charge("y", KernelCost(flops=4))
        a.merge(b)
        assert a.phase("x").flops == 3
        assert a.phase("y").flops == 4


class TestMachine:
    def test_streaming_price(self):
        t = TURING_GPU.seconds(KernelCost(stream_bytes=532e9))
        assert t == pytest.approx(1.0)

    def test_cpu_slower_streaming(self):
        c = KernelCost(stream_bytes=1e9)
        assert RYZEN32_CPU.seconds(c) > TURING_GPU.seconds(c)

    def test_transfer_only_on_gpu(self):
        c = KernelCost(transfer_bytes=1e9)
        assert TURING_GPU.seconds(c) > 0
        assert RYZEN32_CPU.seconds(c) == 0
        assert TURING_GPU.is_gpu and not RYZEN32_CPU.is_gpu

    def test_pricing_monotone(self):
        small = KernelCost(stream_bytes=1, random_bytes=1, atomic_ops=1)
        big = small.scaled(10)
        for m in (TURING_GPU, RYZEN32_CPU):
            assert m.seconds(big) > m.seconds(small)

    def test_random_more_expensive_than_stream(self):
        for m in (TURING_GPU, RYZEN32_CPU):
            assert m.seconds(KernelCost(random_bytes=1e9)) > m.seconds(
                KernelCost(stream_bytes=1e9)
            )


class TestSpaces:
    def test_wave_sizes(self):
        assert gpu_space().concurrency == 69632
        assert cpu_space().concurrency == 64
        assert serial_space().concurrency == 1

    def test_waves_cover_range(self):
        sp = cpu_space()
        waves = list(sp.waves(200))
        assert waves[0] == (0, 64)
        assert waves[-1][1] == 200
        total = sum(stop - start for start, stop in waves)
        assert total == 200

    def test_seed_determinism(self):
        a = gpu_space(7).rng.integers(0, 100, 10)
        b = gpu_space(7).rng.integers(0, 100, 10)
        assert np.array_equal(a, b)

    def test_spawn_shares_ledger(self):
        sp = gpu_space(1)
        child = sp.spawn()
        assert child.ledger is sp.ledger

    def test_spawn_child_draws_leave_parent_stream_alone(self):
        # spawning advances the parent RNG once (to derive the child
        # seed), but the child's own draws must not perturb the parent's
        # subsequent stream
        a, b = gpu_space(11), gpu_space(11)
        child_a = a.spawn()
        child_b = b.spawn()
        child_a.rng.integers(0, 100, 1000)  # only a's child draws
        assert np.array_equal(a.rng.integers(0, 100, 50), b.rng.integers(0, 100, 50))
        assert np.array_equal(
            child_b.rng.integers(0, 100, 10), np.random.default_rng(
                np.random.default_rng(11).integers(2**63)).integers(0, 100, 10)
        )

    def test_spawn_deterministic_per_seed(self):
        a = gpu_space(5).spawn().rng.integers(0, 1000, 20)
        b = gpu_space(5).spawn().rng.integers(0, 1000, 20)
        c = gpu_space(6).spawn().rng.integers(0, 1000, 20)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_spawn_child_stream_differs_from_parent(self):
        sp = gpu_space(2)
        child = sp.spawn()
        assert not np.array_equal(
            sp.rng.integers(0, 1000, 20), child.rng.integers(0, 1000, 20)
        )

    def test_spawn_shared_ledger_accumulates_from_both(self):
        sp = gpu_space(3)
        child = sp.spawn()
        sp.ledger.charge("mapping", KernelCost(stream_bytes=100))
        child.ledger.charge("mapping", KernelCost(stream_bytes=25))
        assert sp.ledger.phase("mapping").stream_bytes == 125
        assert sp.seconds() == child.seconds()

    def test_spawn_propagates_tracer(self):
        from repro.trace import Tracer

        sp = gpu_space(4)
        tr = Tracer("t").attach(sp)
        child = sp.spawn()
        assert child.tracer is tr
        with child.span("child-work"):
            child.ledger.charge("mapping", KernelCost(stream_bytes=7))
        tr.close()
        assert tr.root.children[0].name == "child-work"
        assert tr.root.children[0].exclusive_cost().stream_bytes == 7

    def test_seconds_exclude(self):
        sp = gpu_space(0)
        sp.ledger.charge("transfer", KernelCost(transfer_bytes=12e9))
        assert sp.seconds() == pytest.approx(1.0)
        assert sp.seconds(exclude=("transfer",)) == 0.0


class TestAtomics:
    def test_cas(self):
        arr = np.array([-1, 5])
        assert cas(arr, 0, -1, 9)
        assert arr[0] == 9
        assert not cas(arr, 1, -1, 9)
        assert arr[1] == 5

    def test_fetch_add(self):
        arr = np.array([3])
        assert fetch_add(arr, 0, 2) == 3
        assert arr[0] == 5

    def test_atomic_min(self):
        arr = np.array([10])
        assert atomic_min(arr, 0, 4)
        assert arr[0] == 4
        assert not atomic_min(arr, 0, 7)

    def test_first_winner_cas_one_per_location(self):
        arr = np.full(4, -1)
        idx = np.array([2, 2, 2, 3])
        desired = np.array([10, 11, 12, 13])
        won = first_winner_cas(arr, idx, desired, -1)
        assert list(won) == [True, False, False, True]
        assert arr[2] == 10 and arr[3] == 13

    def test_first_winner_cas_respects_expected(self):
        arr = np.array([0, -1])
        won = first_winner_cas(arr, np.array([0, 1]), np.array([7, 8]), -1)
        assert list(won) == [False, True]

    def test_batch_fetch_add(self):
        counter = np.array([5])
        ids = batch_fetch_add(counter, 3)
        assert list(ids) == [5, 6, 7]
        assert counter[0] == 8


class TestPrimitives:
    def test_prefix_sum(self):
        out = exclusive_prefix_sum(np.array([3, 1, 4]))
        assert list(out) == [0, 3, 4, 8]

    def test_prefix_sum_charges(self):
        sp = gpu_space(0)
        exclusive_prefix_sum(np.arange(10), sp)
        assert sp.ledger.phase("mapping").stream_bytes > 0

    def test_gen_perm_is_permutation(self):
        sp = gpu_space(3)
        p = gen_perm(100, sp)
        assert sorted(p.tolist()) == list(range(100))

    def test_gen_perm_deterministic(self):
        assert np.array_equal(gen_perm(50, gpu_space(9)), gen_perm(50, gpu_space(9)))
        assert not np.array_equal(gen_perm(50, gpu_space(9)), gen_perm(50, gpu_space(10)))

    def test_segment_sum(self):
        out = segment_sum(np.array([1.0, 2.0, 3.0]), np.array([0, 1, 0]), 2)
        assert list(out) == [4.0, 2.0]

    def test_segment_max_index_first_max(self):
        vals = np.array([1.0, 5.0, 5.0, 2.0])
        idx = segment_max_index(None, vals, np.array([0, 3, 4]))
        assert list(idx) == [1, 3]

    def test_segment_max_index_empty_segment(self):
        idx = segment_max_index(None, np.array([2.0]), np.array([0, 0, 1]))
        assert list(idx) == [-1, 0]

    def test_compact(self):
        out = compact_nonnegative(np.array([-1, 3, -1, 0]))
        assert list(out) == [3, 0]


class TestMemory:
    def test_graph_bytes_positive(self):
        assert graph_bytes(100, 1000) > 0

    def test_tracker_raises(self):
        t = MemoryTracker(1000, algorithm="hec", graph="g")
        with pytest.raises(SimulatedOOM):
            t.hold_level(1000, 10000)

    def test_tracker_scale(self):
        t = MemoryTracker(1e6, scale=1000.0)
        with pytest.raises(SimulatedOOM) as e:
            t.transient(2000)
        assert e.value.demand == pytest.approx(2e6)

    def test_null_tracker_records_but_never_raises(self):
        t = MemoryTracker.null()
        t.hold_level(1e12, 1e14)
        t.transient(1e15)
        assert t.peak > 0

    def test_resident_accumulates(self):
        t = MemoryTracker(float("inf"), enabled=False)
        t.hold_level(10, 100)
        p1 = t.peak
        t.hold_level(10, 100)
        assert t.peak == pytest.approx(2 * p1)

    @pytest.mark.parametrize(
        "algo", ["hec", "hec2", "hec3", "hem", "mtmetis", "gosh", "mis2", "gosh_hec", "other"]
    )
    def test_mapping_workspace_positive(self, algo):
        assert mapping_workspace(algo, 1000, 10000) > 0

    @pytest.mark.parametrize("method", ["sort", "hash", "spgemm"])
    def test_construction_workspace_positive(self, method):
        assert construction_workspace(100, 10000, method) > 0

    def test_hem_workspace_exceeds_hec(self):
        # HEM's per-pass recomputation buffers are the OOM driver
        assert mapping_workspace("hem", 1000, 50000) > mapping_workspace("hec", 1000, 50000)
