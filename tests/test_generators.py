"""Generators and the Table-I corpus."""

import numpy as np
import pytest

from repro.csr import is_connected, validate
from repro.generators import (
    CORPUS,
    REGULAR,
    SKEWED,
    ba_tree,
    chung_lu,
    corpus_table,
    delaunay_graph,
    grid2d,
    grid3d,
    load,
    memory_scale,
    mycielski_step,
    mycielskian,
    random_geometric,
    rmat,
    road_like,
    stencil_offsets,
    watts_strogatz,
)


class TestMesh:
    def test_grid2d_star(self):
        g = grid2d(4, 5)
        validate(g)
        assert g.n == 20
        assert g.m == 4 * 4 + 3 * 5  # horizontal + vertical edges
        assert is_connected(g)

    def test_grid3d_box_degree(self):
        g = grid3d(5, 5, 5, radius=1, kind="box")
        validate(g)
        assert g.max_degree() == 26  # interior of a 27-point stencil
        assert g.degree(0) == 7  # corner

    def test_stencil_offsets(self):
        assert len(stencil_offsets(2, 1, "box")) == 8
        assert len(stencil_offsets(2, 1, "star")) == 4
        assert len(stencil_offsets(3, 1, "box")) == 26
        assert len(stencil_offsets(3, 1, "star")) == 6

    def test_bad_stencil(self):
        with pytest.raises(ValueError):
            stencil_offsets(2, 1, "diamond")

    def test_skew_near_one(self):
        assert grid3d(6, 6, 6).degree_skew() < 2.0


class TestRandomFamilies:
    def test_rgg(self):
        g = random_geometric(500, avg_degree=12, seed=1)
        validate(g)
        assert is_connected(g)
        assert 6 < g.avg_degree() < 20

    def test_delaunay(self):
        g = delaunay_graph(400, seed=2)
        validate(g)
        assert is_connected(g)
        # Euler: planar triangulation has < 3n edges and avg degree < 6
        assert g.m < 3 * g.n
        assert g.avg_degree() < 6

    def test_rmat_skewed(self):
        g = rmat(9, edge_factor=12, seed=3)
        validate(g)
        assert is_connected(g)
        assert g.degree_skew() > 5

    def test_chung_lu_tail(self):
        g = chung_lu(800, avg_degree=20, exponent=2.3, seed=4)
        validate(g)
        assert g.degree_skew() > 3

    def test_ba_tree_is_tree(self):
        g = ba_tree(300, seed=5)
        validate(g)
        assert is_connected(g)
        assert g.m == g.n - 1

    def test_ba_tree_bias_controls_skew(self):
        hub = ba_tree(2000, seed=6, bias=1.0).degree_skew()
        flat = ba_tree(2000, seed=6, bias=0.0).degree_skew()
        assert hub > flat

    def test_watts_strogatz(self):
        g = watts_strogatz(400, k=10, p=0.1, seed=7)
        validate(g)
        assert is_connected(g)
        assert 7 < g.avg_degree() < 11

    def test_road_like_sparse(self):
        g = road_like(2000, seed=8)
        validate(g)
        assert is_connected(g)
        assert g.avg_degree() < 3.0

    def test_determinism(self):
        a = rmat(8, seed=9)
        b = rmat(8, seed=9)
        assert np.array_equal(a.adjncy, b.adjncy)
        c = rmat(8, seed=10)
        assert a.m != c.m or not np.array_equal(a.adjncy, c.adjncy)


class TestMycielskian:
    def test_size_recurrences(self):
        g = mycielskian(2)
        n, m = g.n, g.m
        for order in range(3, 8):
            g = mycielski_step(g)
            n, m = 2 * n + 1, 3 * m + n
            assert g.n == n
            assert g.m == m
        validate(g)

    def test_triangle_free(self):
        import networkx as nx

        g = mycielskian(5)
        src, dst, _ = g.to_coo()
        nxg = nx.Graph(zip(src.tolist(), dst.tolist()))
        assert len(list(nx.triangles(nxg).values())) == g.n
        assert sum(nx.triangles(nxg).values()) == 0

    def test_chromatic_growth_proxy(self):
        # each step increases the max degree
        a, b = mycielskian(5), mycielskian(6)
        assert b.max_degree() > a.max_degree()

    def test_bad_order(self):
        with pytest.raises(ValueError):
            mycielskian(1)


class TestCorpus:
    def test_twenty_graphs(self):
        assert len(CORPUS) == 20
        assert len(REGULAR) == len(SKEWED) == 10

    def test_paper_order_by_size(self):
        sizes = [s.paper_size_measure for s in REGULAR]
        assert sizes == sorted(sizes, reverse=True)

    def test_load_and_cache(self, tmp_path, monkeypatch):
        import repro.generators.corpus as c

        monkeypatch.setattr(c, "_CACHE_DIR", tmp_path)
        g1, spec = load("ppa")
        assert (tmp_path / "ppa-s0.npz").exists()
        assert (tmp_path / "ppa-s0.meta.json").exists()
        g2, _ = load("ppa")
        assert np.array_equal(g1.adjncy, g2.adjncy)
        assert spec.group == "skewed"
        stats = c._get_cache().stats()
        assert stats.misses == 1 and stats.hits == 1

    def test_corrupt_cache_self_heals(self, tmp_path, monkeypatch):
        import repro.generators.corpus as c

        monkeypatch.setattr(c, "_CACHE_DIR", tmp_path)
        g1, _ = load("ppa")
        path = tmp_path / "ppa-s0.npz"
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        g2, _ = load("ppa")  # must regenerate, not raise BadZipFile
        assert np.array_equal(g1.adjncy, g2.adjncy)
        stats = c._get_cache().stats()
        assert stats.corruptions == 1 and stats.regenerations == 1
        assert list((tmp_path / "quarantine").iterdir())

    def test_stale_fingerprint_regenerates(self, tmp_path, monkeypatch):
        import repro.generators.corpus as c

        monkeypatch.setattr(c, "_CACHE_DIR", tmp_path)
        load("ppa")
        monkeypatch.setattr(c, "_fingerprint", lambda spec, seed: "f" * 16)
        load("ppa")
        stats = c._get_cache().stats()
        assert stats.stale == 1 and stats.regenerations == 1

    def test_legacy_versioned_file_is_adopted(self, tmp_path, monkeypatch):
        import repro.generators.corpus as c
        from repro.csr.io import save_npz

        monkeypatch.setattr(c, "_CACHE_DIR", tmp_path)
        g = c._BY_NAME["ppa"].generate(0)
        save_npz(g, tmp_path / "ppa-s0-2.npz")  # pre-cache-era naming
        g2, _ = load("ppa")
        assert np.array_equal(g.adjncy, g2.adjncy)
        stats = c._get_cache().stats()
        assert stats.migrations == 1 and stats.misses == 0
        assert not (tmp_path / "ppa-s0-2.npz").exists()
        assert (tmp_path / "ppa-s0.npz").exists()

    def test_unknown_graph(self):
        with pytest.raises(KeyError, match="unknown corpus graph"):
            load("nonexistent")

    def test_all_connected_and_valid(self):
        for spec in CORPUS:
            g, _ = load(spec.name)
            validate(g)
            assert is_connected(g), spec.name
            assert g.name == spec.name

    def test_skew_split_matches_groups(self):
        from repro.construct import is_skewed

        for spec in CORPUS:
            g, _ = load(spec.name)
            assert is_skewed(g) == (spec.group == "skewed"), spec.name

    def test_memory_scale_large(self):
        g, spec = load("ppa")
        assert memory_scale(g, spec) > 100  # ~1/1000-scale stand-ins

    def test_corpus_table_fields(self):
        rows = corpus_table()
        assert len(rows) == 20
        assert all({"graph", "m", "n", "skew", "paper_m"} <= set(r) for r in rows)
