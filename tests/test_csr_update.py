"""Batched edge updates: apply_edges semantics + budgeted-kernel parity."""

import numpy as np
import pytest

from repro.csr import CSRGraph, from_edge_list, validate
from repro.csr.update import apply_edges
from repro.partition.fm import compute_gains
from repro.storage import budget as budget_mod
from repro.storage.budget import MemoryBudget
from repro.storage.mapped import open_mapped, write_mapped

from .conftest import random_connected


def arrays(g):
    return (np.asarray(g.xadj), np.asarray(g.adjncy),
            np.asarray(g.ewgts), np.asarray(g.vwgts))


def assert_same_graph(a, b):
    for x, y in zip(arrays(a), arrays(b)):
        np.testing.assert_array_equal(x, y)


def edge_set(g):
    return {(int(u), int(v)): float(w) for u, v, w in
            zip(g.edge_sources(), np.asarray(g.adjncy), np.asarray(g.ewgts))}


class TestApplyEdges:
    def test_add_new_edges_matches_rebuild(self):
        g = random_connected(60, 90, seed=3, weighted=True)
        present = edge_set(g)
        (u1, v1), (u2, v2) = [
            (u, v) for u in range(2) for v in range(30, 60)
            if (u, v) not in present
        ][:2]
        g2, delta = apply_edges(g, add=([u1, u2], [v1, v2], [2.5, 1.5]))
        validate(g2)
        # byte-identical to rebuilding from the mutated edge list
        es, ed = g.edge_sources(), np.asarray(g.adjncy)
        keep = es < ed
        ref = from_edge_list(
            g.n,
            np.concatenate([es[keep], [u1, u2]]),
            np.concatenate([ed[keep], [v1, v2]]),
            np.concatenate([np.asarray(g.ewgts)[keep], [2.5, 1.5]]),
            sum_duplicates=False,
            name=g.name,
        )
        assert_same_graph(g2, ref)
        assert delta.applied_adds == 2 and delta.applied_removes == 0

    def test_duplicate_adds_keep_max_weight(self):
        g = random_connected(30, 40, seed=1)
        g2, delta = apply_edges(
            g, add=([3, 3, 20], [20, 20, 3], [1.0, 4.0, 2.0])
        )
        validate(g2)
        # (3,20) requested three times (both directions): max weight wins
        assert edge_set(g2)[(3, 20)] == 4.0
        assert edge_set(g2)[(20, 3)] == 4.0
        assert delta.requested_adds == 3

    def test_add_below_existing_weight_is_noop(self):
        g = from_edge_list(4, [0, 1], [1, 2], [5.0, 1.0])
        g2, delta = apply_edges(g, add=([0], [1], [2.0]))
        assert g2 is g  # max(5, 2) = 5: nothing changed, same object
        assert delta.empty

    def test_removing_absent_edges_is_noop(self):
        g = random_connected(30, 40, seed=2)
        absent = [(u, v) for u in range(30) for v in range(30)
                  if u != v and (u, v) not in edge_set(g)][:3]
        ru = [u for u, _ in absent]
        rv = [v for _, v in absent]
        g2, delta = apply_edges(g, remove=(ru, rv))
        assert g2 is g
        assert delta.empty and delta.requested_removes == 3

    def test_add_and_remove_same_edge_in_one_batch(self):
        # E' = (E \ R) ∪max A: the add wins over the simultaneous remove
        g = from_edge_list(4, [0, 1, 2], [1, 2, 3], [1.0, 1.0, 1.0])
        g2, _delta = apply_edges(g, add=([0], [1], [7.0]), remove=([0], [1]))
        validate(g2)
        assert edge_set(g2)[(0, 1)] == 7.0
        assert g2.m == g.m

    def test_disconnecting_update(self):
        # removing the bridge splits the graph; CSR must stay valid with
        # isolated structure intact
        g = from_edge_list(4, [0, 1, 2], [1, 2, 3], [1.0, 1.0, 1.0])
        g2, delta = apply_edges(g, remove=([1], [2]))
        validate(g2)
        assert g2.m == 2
        assert (1, 2) not in edge_set(g2) and (2, 1) not in edge_set(g2)
        assert delta.applied_removes == 1

    def test_remove_all_edges_of_a_vertex(self):
        g = from_edge_list(3, [0, 1], [1, 2], [1.0, 1.0])
        g2, _ = apply_edges(g, remove=([0, 1], [1, 2]))
        validate(g2)
        assert g2.m == 0 and g2.n == 3

    def test_self_loops_silently_dropped(self):
        # self-loops are outside the graph model: filtered, not an error
        g = random_connected(10, 12, seed=0)
        g2, delta = apply_edges(g, add=([3], [3], [1.0]))
        assert g2 is g
        assert delta.empty and delta.requested_adds == 1

    def test_out_of_range_rejected(self):
        g = random_connected(10, 12, seed=0)
        with pytest.raises(ValueError):
            apply_edges(g, add=([3], [10], [1.0]))

    def test_mapped_vs_resident_parity(self, tmp_path):
        g = random_connected(200, 400, seed=5, weighted=True)
        gm = open_mapped(write_mapped(g, tmp_path / "g.csrdir"))
        add = ([7, 9, 100], [150, 151, 2], [3.5, 0.25, 9.0])
        es = g.edge_sources()
        rm = (es[:5], np.asarray(g.adjncy)[:5])
        r1, d1 = apply_edges(g, add=add, remove=rm)
        r2, d2 = apply_edges(gm, add=add, remove=rm)
        assert_same_graph(r1, r2)
        assert d1.summary() == d2.summary()

    def test_full_rebuild_cross_check(self):
        """apply_edges is byte-identical to from_edge_list on the
        mutated edge list, across a randomized batch."""
        rng = np.random.default_rng(17)
        g = random_connected(150, 400, seed=7, weighted=True)
        au = rng.integers(0, g.n, 25)
        av = rng.integers(0, g.n, 25)
        ok = au != av
        au, av = au[ok], av[ok]
        aw = rng.uniform(0.5, 6.0, len(au))
        eidx = rng.choice(g.m_directed, 30, replace=False)
        ru = g.edge_sources()[eidx]
        rv = np.asarray(g.adjncy)[eidx]
        g2, _ = apply_edges(g, add=(au, av, aw), remove=(ru, rv))
        validate(g2)

        ref = edge_set(g)
        for u, v in zip(ru, rv):
            ref.pop((int(u), int(v)), None)
            ref.pop((int(v), int(u)), None)
        for u, v, w in zip(au, av, aw):
            for key in ((int(u), int(v)), (int(v), int(u))):
                ref[key] = max(ref.get(key, 0.0), float(w))
        uu = [k[0] for k in ref if k[0] < k[1]]
        vv = [k[1] for k in ref if k[0] < k[1]]
        ww = [ref[(u, v)] for u, v in zip(uu, vv)]
        rebuilt = from_edge_list(g.n, uu, vv, ww, sum_duplicates=False,
                                 name=g.name)
        assert_same_graph(g2, rebuilt)

    def test_convenience_method(self):
        g = random_connected(20, 30, seed=4)
        via_method, d1 = g.apply_edges(add=([0], [15], [2.0]))
        via_fn, d2 = apply_edges(g, add=([0], [15], [2.0]))
        assert_same_graph(via_method, via_fn)
        assert d1.summary() == d2.summary()


class TestBudgetedKernelParity:
    """PR-8 budgeted twins: byte-identical under tiny windows."""

    def test_weighted_degrees_chunked(self):
        g = random_connected(400, 900, seed=11, weighted=True)
        ref = g.weighted_degrees().copy()
        g2 = CSRGraph(g.xadj, g.adjncy, g.ewgts, g.vwgts, name="twin")
        b = MemoryBudget(2048, min_window=32)
        with budget_mod.limit(b):
            got = g2.weighted_degrees()
        assert b.engaged == 1
        assert got.tobytes() == ref.tobytes()

    def test_compute_gains_chunked(self):
        g = random_connected(400, 900, seed=12, weighted=True)
        part = (np.arange(g.n) % 2).astype(np.int8)
        ref = compute_gains(g, part)
        b = MemoryBudget(2048, min_window=32)
        with budget_mod.limit(b):
            got = compute_gains(g, part)
        assert b.engaged == 1
        assert b.peak_planned <= b.resident_bytes
        assert got.tobytes() == ref.tobytes()

    def test_compute_gains_chunked_hub_row(self):
        # a row larger than any window must stay whole and still match
        hub_d = np.arange(1, 301)
        g = from_edge_list(301, np.zeros(300, dtype=np.int64), hub_d,
                           np.linspace(0.5, 3.0, 300))
        part = (np.arange(301) % 2).astype(np.int8)
        ref = compute_gains(g, part)
        with budget_mod.limit(MemoryBudget(512, min_window=16)):
            got = compute_gains(g, part)
        assert got.tobytes() == ref.tobytes()
