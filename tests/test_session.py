"""Fault-tolerant sessions: journal/resume, retry/quarantine, chaos matrix."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro import faultinject
from repro.bench.report import EXIT_QUARANTINED, main as bench_main
from repro.csr.graph import CSRGraph
from repro.csr.validation import GraphValidationError, find_defects
from repro.parallel import shm as shm_lifecycle
from repro.parallel.pool import ExperimentTask, format_pool_summary
from repro.parallel.session import (
    SessionJournal,
    SessionMismatch,
    backoff_delay,
    row_digest,
    run_session,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

TASKS = [ExperimentTask(kind="coarsen", graph=g) for g in ("ppa", "citation")]


@pytest.fixture(autouse=True)
def _disarm_faults():
    faultinject.clear()
    yield
    faultinject.clear()


def _rows_key(results):
    return json.dumps(results, sort_keys=True)


def _no_leaks():
    """No shm segments owned by this process, no lingering children."""
    import multiprocessing as mp

    mine = [s for s in shm_lifecycle.list_segments() if s["pid"] == os.getpid()]
    assert mine == [], mine
    for child in mp.active_children():
        child.join(5.0)
        assert not child.is_alive()


# ------------------------------------------------------- pure components


class TestBackoff:
    def test_deterministic(self):
        assert backoff_delay("k", 1) == backoff_delay("k", 1)

    def test_keys_decorrelate(self):
        assert backoff_delay("a", 1) != backoff_delay("b", 1)

    def test_capped_exponential_envelope(self):
        for attempt in range(8):
            d = backoff_delay("k", attempt, base=0.25, cap=5.0)
            assert 0.0 < d <= 5.0
            assert d >= min(5.0, 0.25 * 2.0**attempt) * 0.5

    def test_zero_base_disables(self):
        assert backoff_delay("k", 3, base=0.0) == 0.0


class TestJournal:
    def test_append_scan_round_trip(self, tmp_path):
        j = SessionJournal(tmp_path)
        j.open()
        j.append({"type": "session", "tasks_fp": "abc"})
        j.append({"type": "done", "key": "k", "row": {"x": 1.5}})
        j.close()
        records, valid = SessionJournal.scan(j.path)
        assert [r["type"] for r in records] == ["session", "done"]
        assert records[1]["row"] == {"x": 1.5}
        assert valid == j.path.stat().st_size

    def test_torn_tail_detected_and_truncated(self, tmp_path):
        j = SessionJournal(tmp_path)
        j.open()
        j.append({"type": "session", "tasks_fp": "abc"})
        j.close()
        with open(j.path, "ab") as fh:
            fh.write(b'{"type": "done", "key": "k", "ro')  # torn write
        records, valid = SessionJournal.scan(j.path)
        assert len(records) == 1
        assert valid < j.path.stat().st_size
        j2 = SessionJournal(tmp_path)
        j2.open(truncate_to=valid)
        assert j2.path.stat().st_size == valid

    def test_scan_missing_file(self, tmp_path):
        assert SessionJournal.scan(tmp_path / "nope.jsonl") == ([], 0)

    def test_row_digest_stable_across_json_round_trip(self):
        row = {"graph": "ppa", "total_s": 0.123456789e-3, "levels": 2}
        replayed = json.loads(json.dumps(row))
        assert row_digest(row) == row_digest(replayed)


# ------------------------------------------------- resume & retry (task_fn)


def _marked_task(task):
    """Picklable test task: records each execution in SESSION_TEST_DIR."""
    d = Path(os.environ["SESSION_TEST_DIR"])
    with open(d / f"{task.graph}.count", "a") as fh:
        fh.write("x")
    return {"key": task.key(), "pid": os.getpid(), "wall_s": 0.0,
            "row": {"graph": task.graph, "seed": task.seed}}


def _failing_task(task):
    raise ValueError(f"boom {task.graph}")


class TestResume:
    def _runs(self, tmp_path, graph):
        p = tmp_path / f"{graph}.count"
        return len(p.read_text()) if p.exists() else 0

    def test_completed_tasks_replay_not_rerun(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SESSION_TEST_DIR", str(tmp_path))
        sess = tmp_path / "sess"
        first = run_session(TASKS, jobs=1, task_fn=_marked_task, session_dir=sess)
        assert self._runs(tmp_path, "ppa") == 1
        second = run_session(TASKS, jobs=1, task_fn=_marked_task, session_dir=sess)
        assert self._runs(tmp_path, "ppa") == 1  # replayed, not re-executed
        assert second.summary["resumed"] == len(TASKS)
        assert _rows_key(second.results) == _rows_key(first.results)

    def test_partial_journal_schedules_only_remainder(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SESSION_TEST_DIR", str(tmp_path))
        sess = tmp_path / "sess"
        run_session(TASKS[:1], jobs=1, task_fn=_marked_task, session_dir=sess)
        # simulate the interrupted full session: same journal dir would
        # carry a different task fingerprint, so build the real one
        full_sess = tmp_path / "full"
        first = run_session(TASKS, jobs=1, task_fn=_marked_task,
                            session_dir=full_sess)
        # drop the second done record to fake a mid-run kill
        records, _ = SessionJournal.scan(full_sess / "journal.jsonl")
        keep = [r for r in records if not (
            r.get("type") == "done" and r.get("key") == TASKS[1].key()
        ) and r.get("type") != "end"]
        with open(full_sess / "journal.jsonl", "w") as fh:
            fh.writelines(json.dumps(r) + "\n" for r in keep)
        before = self._runs(tmp_path, "citation")
        resumed = run_session(TASKS, jobs=1, task_fn=_marked_task,
                              session_dir=full_sess)
        assert self._runs(tmp_path, "citation") == before + 1
        assert resumed.summary["resumed"] == 1
        assert _rows_key(resumed.results) == _rows_key(first.results)

    def test_mismatched_task_set_refused(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SESSION_TEST_DIR", str(tmp_path))
        sess = tmp_path / "sess"
        run_session(TASKS, jobs=1, task_fn=_marked_task, session_dir=sess)
        other = [ExperimentTask(kind="coarsen", graph="kron21")]
        with pytest.raises(SessionMismatch):
            run_session(other, jobs=1, task_fn=_marked_task, session_dir=sess)

    def test_tampered_row_fails_digest_and_reruns(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SESSION_TEST_DIR", str(tmp_path))
        sess = tmp_path / "sess"
        run_session(TASKS[:1], jobs=1, task_fn=_marked_task, session_dir=sess)
        path = sess / "journal.jsonl"
        records, _ = SessionJournal.scan(path)
        for r in records:
            if r.get("type") == "done":
                r["row"]["seed"] = 999  # digest no longer matches
        with open(path, "w") as fh:
            fh.writelines(json.dumps(r) + "\n" for r in records)
        with pytest.warns(RuntimeWarning, match="fails its digest"):
            out = run_session(TASKS[:1], jobs=1, task_fn=_marked_task,
                              session_dir=sess)
        assert out.summary["resumed"] == 0
        assert self._runs(tmp_path, "ppa") == 2  # re-executed
        assert out.results[0]["seed"] == 0  # the honest value, not 999

    def test_torn_tail_resume(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SESSION_TEST_DIR", str(tmp_path))
        sess = tmp_path / "sess"
        first = run_session(TASKS, jobs=1, task_fn=_marked_task, session_dir=sess)
        with open(sess / "journal.jsonl", "ab") as fh:
            fh.write(b'{"half a reco')
        out = run_session(TASKS, jobs=1, task_fn=_marked_task, session_dir=sess)
        assert _rows_key(out.results) == _rows_key(first.results)


class TestRetryQuarantine:
    def test_exhausted_retries_quarantine_not_raise(self, tmp_path):
        sess = tmp_path / "sess"
        out = run_session(TASKS[:1], jobs=1, task_fn=_failing_task,
                          retries=1, backoff_base=0.0, session_dir=sess)
        assert out.results == []
        assert out.summary["retries"] == 1
        assert out.summary["quarantined"] == 1
        (entry,) = out.failed
        assert entry["attempts"] == 2 and entry["kind"] == "ValueError"
        types = [r["type"] for r in SessionJournal.scan(sess / "journal.jsonl")[0]]
        assert types.count("fail") == 2 and types.count("quarantine") == 1

    def test_other_tasks_complete_around_quarantine(self):
        faultinject.install("pool.worker:error:graph=ppa")
        try:
            out = run_session(TASKS, jobs=1, retries=0)
        finally:
            faultinject.clear()
        assert [r["graph"] for r in out.results] == ["citation"]
        assert out.failed[0]["key"] == TASKS[0].key()

    def test_transient_failure_retried_to_success(self):
        base = run_session(TASKS, jobs=1)
        # attempts 0 and 1 fail deterministically, attempt 2 succeeds
        faultinject.install("pool.worker:error:graph=ppa,attempt<2")
        out = run_session(TASKS, jobs=1, retries=2, backoff_base=0.0)
        assert out.summary["retries"] == 2
        assert out.summary["quarantined"] == 0
        assert _rows_key(out.results) == _rows_key(base.results)


# ----------------------------------------------------- supervised pool


class TestSupervisedPool:
    def test_worker_crash_respawn_charges_only_victim(self):
        base = run_session(TASKS, jobs=1)
        faultinject.install("pool.worker:crash:graph=ppa,attempt<1")
        try:
            out = run_session(TASKS, jobs=2, retries=2, backoff_base=0.0)
        finally:
            faultinject.clear()
        assert out.summary["crashes"] == 1
        assert out.summary["quarantined"] == 0
        assert _rows_key(out.results) == _rows_key(base.results)
        assert out.failed == []
        _no_leaks()

    def test_hang_killed_and_retried(self):
        base = run_session(TASKS, jobs=1)
        faultinject.install("pool.worker:hang:graph=citation,attempt<1,sleep=60")
        try:
            out = run_session(TASKS, jobs=2, retries=2, backoff_base=0.0,
                              task_timeout=2.0)
        finally:
            faultinject.clear()
        assert out.summary["hangs"] == 1
        assert out.summary["quarantined"] == 0
        assert _rows_key(out.results) == _rows_key(base.results)
        _no_leaks()

    def test_persistent_crash_quarantined_pool_survives(self):
        faultinject.install("pool.worker:crash:graph=ppa")
        try:
            out = run_session(TASKS, jobs=2, retries=1, backoff_base=0.0)
        finally:
            faultinject.clear()
        assert out.summary["quarantined"] == 1
        assert out.failed[0]["kind"] == "WorkerCrash"
        assert "exit code 70" in out.failed[0]["error"]
        assert [r["graph"] for r in out.results] == ["citation"]
        _no_leaks()


# -------------------------------------------------------- degradations


class TestDegradation:
    def test_shm_publish_failure_falls_back_to_cache(self):
        base = run_session(TASKS, jobs=1)
        faultinject.install("shm.publish:oserror")
        try:
            with pytest.warns(RuntimeWarning, match="degraded"):
                out = run_session(TASKS, jobs=2)
        finally:
            faultinject.clear()
        assert any(d["site"] == "shm.publish" for d in out.summary["degradations"])
        assert out.summary["shared_mib"] == 0.0
        assert _rows_key(out.results) == _rows_key(base.results)
        _no_leaks()

    def test_shm_attach_failure_falls_back_per_worker(self):
        base = run_session(TASKS, jobs=1)
        faultinject.install("shm.attach:oserror")
        try:
            out = run_session(TASKS, jobs=2)
        finally:
            faultinject.clear()
        assert any(d["site"] == "shm.attach" for d in out.summary["degradations"])
        assert _rows_key(out.results) == _rows_key(base.results)
        _no_leaks()

    def test_pool_create_failure_falls_back_to_serial(self):
        base = run_session(TASKS, jobs=1)
        faultinject.install("pool.create:oserror")
        try:
            with pytest.warns(RuntimeWarning, match="degraded"):
                out = run_session(TASKS, jobs=2)
        finally:
            faultinject.clear()
        assert any(d["site"] == "pool.create" for d in out.summary["degradations"])
        assert _rows_key(out.results) == _rows_key(base.results)
        _no_leaks()

    def test_journal_write_failure_disables_journal_not_session(self, tmp_path):
        faultinject.install("journal.write:oserror:after=1")
        try:
            with pytest.warns(RuntimeWarning, match="journal write failed"):
                out = run_session(TASKS, jobs=1, session_dir=tmp_path / "s")
        finally:
            faultinject.clear()
        assert len(out.results) == len(TASKS)
        assert out.summary["journal_disabled"] is True
        assert any(d["site"] == "journal.write"
                   for d in out.summary["degradations"])


# --------------------------------------------------------- chaos matrix


def _graph_cache_fresh(monkeypatch, tmp_path):
    import repro.generators.corpus as c

    monkeypatch.setattr(c, "_CACHE_DIR", tmp_path / "fresh-cache")


CHAOS_CELLS = [
    # (fault spec, extra session kwargs, fresh graph cache, recovery is
    #  visible in the session summary)
    ("pool.worker:crash:attempt<2,graph=ppa", {"jobs": 2}, False, True),
    ("pool.worker:hang:attempt<1,graph=ppa,sleep=60",
     {"jobs": 2, "task_timeout": 2.0}, False, True),
    ("pool.worker:oserror:attempt<2,graph=ppa", {"jobs": 2}, False, True),
    ("pool.worker:error:attempt<1,graph=citation", {"jobs": 2}, False, True),
    ("shm.publish:oserror", {"jobs": 2}, False, True),
    # a *transient* publish stall delays the session but must not distort it
    ("shm.publish:hang:sleep=1,times=1", {"jobs": 2}, False, False),
    ("shm.attach:oserror", {"jobs": 2}, False, True),
    ("pool.create:oserror", {"jobs": 2}, False, True),
    # cache-store failure degrades inside the cache (store_failures ledger,
    # asserted below); invisible to the session summary by design
    ("cache.store:oserror", {"jobs": 2}, True, False),
    ("journal.write:oserror:after=1", {"jobs": 2}, False, True),
]


class TestChaosMatrix:
    """Every injected fault ends in retry, quarantine, or degradation —

    never a hang, a stranded worker, or a leaked shm segment — and the
    surviving results match the fault-free run byte for byte.  The
    crash/kill kinds at *parent* sites are exercised by
    ``TestKillResume`` below (they must take down a subprocess, not the
    test runner)."""

    @pytest.fixture(scope="class")
    def baseline(self):
        return _rows_key(run_session(TASKS, jobs=1).results)

    @pytest.mark.parametrize(
        "spec,kwargs,fresh_cache,expect_recovery", CHAOS_CELLS,
        ids=["-".join(c[0].split(":")[:2]) for c in CHAOS_CELLS],
    )
    def test_cell_recovers_cleanly(self, spec, kwargs, fresh_cache,
                                   expect_recovery, baseline, tmp_path,
                                   monkeypatch):
        if fresh_cache:
            _graph_cache_fresh(monkeypatch, tmp_path)
        faultinject.install(spec)
        t0 = time.monotonic()
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                out = run_session(
                    TASKS, retries=2, backoff_base=0.0,
                    session_dir=tmp_path / "sess", **kwargs,
                )
        finally:
            faultinject.clear()
        assert time.monotonic() - t0 < 60, "chaos cell took pathologically long"
        assert out.summary["quarantined"] == 0, out.failed
        assert _rows_key(out.results) == baseline
        recovered = bool(
            out.summary["retries"] or out.summary["crashes"]
            or out.summary["hangs"] or out.summary["degradations"]
        )
        assert recovered == expect_recovery
        _no_leaks()

    def test_cache_store_failure_counts_in_ledger(self, tmp_path, monkeypatch):
        import repro.generators.corpus as c

        _graph_cache_fresh(monkeypatch, tmp_path)
        faultinject.install("cache.store:oserror")
        try:
            with pytest.warns(RuntimeWarning, match="cache store"):
                g, _spec = c.load("ppa", 0)
        finally:
            faultinject.clear()
        assert g.n > 0
        assert c._get_cache().stats().store_failures >= 1


# ------------------------------------------------ SIGKILL resume (CLI)


class TestKillResume:
    def test_sigkill_midrun_then_resume_bitwise_identical(self, tmp_path):
        from tests.test_pool import _tree_bytes

        graphs = "ppa,citation"
        base_dir = tmp_path / "base"
        assert bench_main(["--trace-dir", str(base_dir), "corpus",
                           "--graphs", graphs]) == 0

        sess = tmp_path / "sess"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop(faultinject.ENV_VAR, None)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.bench",
             "--trace-dir", str(tmp_path / "killed"),
             "--faults", "journal.write:kill:after=2",
             "corpus", "--graphs", graphs, "--resume", str(sess),
             "--jobs", "2"],
            cwd=REPO_ROOT, env=env, capture_output=True, timeout=300,
        )
        assert proc.returncode in (-9, 137), proc.stderr.decode()[-2000:]
        records, _ = SessionJournal.scan(sess / "journal.jsonl")
        assert records[0]["type"] == "session"
        assert sum(r["type"] == "done" for r in records) == 1

        # orphaned workers notice the dead parent and exit; with them
        # gone the resource tracker unlinks the published segments
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and shm_lifecycle.list_segments():
            time.sleep(0.5)
        shm_lifecycle.sweep_stale()  # belt and braces: gc-shm's collector
        assert shm_lifecycle.list_segments() == []

        out_dir = tmp_path / "resumed"
        assert bench_main(["--trace-dir", str(out_dir), "corpus",
                           "--graphs", graphs, "--resume", str(sess),
                           "--jobs", "2"]) == 0
        assert _tree_bytes(out_dir) == _tree_bytes(base_dir)


# ------------------------------------------------------ CLI behaviours


class TestSessionCLI:
    def test_quarantine_exit_code_is_distinct(self, capsys):
        faultinject.install("pool.worker:error:graph=ppa")
        try:
            rc = bench_main(["corpus", "--graphs", "ppa", "--retries", "0"])
        finally:
            faultinject.clear()
        assert rc == EXIT_QUARANTINED == 3
        out = capsys.readouterr().out
        assert "FAILED" in out and "quarantined" in out

    def test_validate_corpus_flag_passes_on_real_corpus(self):
        assert bench_main(["corpus", "--graphs", "ppa", "--validate-corpus"]) == 0

    def test_unknown_graph_subset_rejected(self):
        with pytest.raises(SystemExit, match="unknown corpus graph"):
            bench_main(["corpus", "--graphs", "not-a-graph"])

    def test_gc_shm_subcommand(self, capsys):
        assert bench_main(["gc-shm"]) == 0
        assert "gc-shm:" in capsys.readouterr().out

    def test_summary_surfaces_recovery_and_failures(self):
        summary = {
            "jobs": 2, "tasks": 3, "wall_s": 1.0, "busy_s": 1.2,
            "utilization": 0.6, "overhead_s": 0.4, "shared_mib": 0.0,
            "workers": {}, "retries": 2, "crashes": 1, "hangs": 0,
            "quarantined": 1, "resumed": 1,
            "degradations": [
                {"site": "shm.publish", "action": "per-worker-cache-load",
                 "error": "ENOSPC"},
            ],
            "failed": [
                {"key": "coarsen:gpu:hec:sort:ppa:s0", "attempts": 3,
                 "kind": "WorkerCrash", "error": "exit code 70"},
            ],
        }
        text = format_pool_summary(summary)
        assert "recovery" in text and "retries 2" in text
        assert "crashes 1" in text and "quarantined 1" in text
        assert "resumed 1" in text
        assert "degraded  shm.publish -> per-worker-cache-load" in text
        assert "FAILED  coarsen:gpu:hec:sort:ppa:s0" in text


# ------------------------------------------------- shm lifecycle sweep


class TestShmLifecycle:
    def test_segment_names_carry_owner_pid(self):
        name = next(shm_lifecycle.segment_names())
        assert shm_lifecycle.owner_pid(name) == os.getpid()
        assert shm_lifecycle.owner_pid("unrelated") is None

    def test_sweep_spares_live_owner_collects_dead(self):
        from multiprocessing import shared_memory

        live = f"{shm_lifecycle.SHM_PREFIX}{os.getpid()}-sweeptest"
        seg = shared_memory.SharedMemory(name=live, create=True, size=64)
        try:
            assert live not in shm_lifecycle.sweep_stale()
            # forcing our own pid dead collects it (the gc-shm CLI path)
            removed = shm_lifecycle.sweep_stale(include_pids={os.getpid()})
            assert live in removed
        finally:
            try:
                seg.close()
                seg.unlink()
            except OSError:
                pass

    def test_publish_registers_and_release_unregisters(self):
        from repro.parallel.pool import _release, publish_corpus

        descriptors, handles, sizes = publish_corpus([("ppa", 0)])
        try:
            assert all(h.name in shm_lifecycle._LIVE for h in handles)
        finally:
            _release(handles)
        assert all(h.name not in shm_lifecycle._LIVE for h in handles)
        _no_leaks()


# -------------------------------------------- structural graph validation


def _path_graph(**overrides):
    """0 - 1 - 2 path graph, optionally corrupted via overrides."""
    arrays = dict(
        xadj=np.array([0, 1, 3, 4]),
        adjncy=np.array([1, 0, 2, 1]),
        ewgts=np.array([1.0, 1.0, 1.0, 1.0]),
        vwgts=np.array([1.0, 1.0, 1.0]),
    )
    arrays.update(overrides)
    return CSRGraph(**arrays)


def _codes(g):
    return {f["code"] for f in find_defects(g)}


class TestGraphValidation:
    def test_valid_graph_has_no_findings(self):
        g = _path_graph()
        assert find_defects(g) == []
        g.validate()  # does not raise

    def test_indptr_endpoints(self):
        assert "indptr-endpoints" in _codes(
            _path_graph(xadj=np.array([0, 1, 3, 5]))
        )

    def test_indptr_monotonic(self):
        assert "indptr-monotonic" in _codes(
            _path_graph(xadj=np.array([0, 2, 1, 4]))
        )

    def test_length_mismatch(self):
        assert "length-mismatch" in _codes(
            _path_graph(vwgts=np.array([1.0, 1.0]))
        )

    def test_index_range_short_circuits_gathers(self):
        findings = find_defects(_path_graph(adjncy=np.array([1, 0, 5, 1])))
        assert [f["code"] for f in findings] == ["index-range"]

    def test_self_loop(self):
        assert "self-loop" in _codes(_path_graph(adjncy=np.array([1, 0, 2, 2])))

    def test_rows_unsorted(self):
        assert "rows-unsorted" in _codes(
            _path_graph(adjncy=np.array([1, 2, 0, 1]))
        )

    def test_duplicate_edge(self):
        assert "duplicate-edge" in _codes(
            _path_graph(adjncy=np.array([1, 0, 0, 1]))
        )

    def test_asymmetric_weights(self):
        assert "asymmetric" in _codes(
            _path_graph(ewgts=np.array([1.0, 1.0, 2.0, 1.0]))
        )

    def test_bad_weights(self):
        assert "edge-weight" in _codes(
            _path_graph(ewgts=np.array([1.0, -1.0, 1.0, 1.0]))
        )
        assert "vertex-weight" in _codes(
            _path_graph(vwgts=np.array([1.0, 0.0, 1.0]))
        )

    def test_validate_raises_with_structured_findings(self):
        g = _path_graph(adjncy=np.array([1, 0, 2, 2]))
        with pytest.raises(GraphValidationError, match="invalid graph") as exc:
            g.validate()
        assert any(f["code"] == "self-loop" for f in exc.value.findings)

    def test_corrupt_legacy_cache_entry_quarantined_on_adoption(
        self, tmp_path, monkeypatch
    ):
        import repro.generators.corpus as c
        from repro.csr.io import save_npz

        monkeypatch.setattr(c, "_CACHE_DIR", tmp_path)
        good = c._BY_NAME["ppa"].generate(0)
        # loadable but structurally corrupt: negative edge weights
        bad = CSRGraph(good.xadj, good.adjncy, -np.asarray(good.ewgts),
                       good.vwgts, good.name)
        save_npz(bad, tmp_path / "ppa-s0-2.npz")  # pre-cache-era naming
        g, _spec = c.load("ppa")
        g.validate()  # the served graph is the regenerated, valid one
        stats = c._get_cache().stats()
        assert stats.quarantines == 1 and stats.migrations == 0
        assert not (tmp_path / "ppa-s0-2.npz").exists()
        assert (tmp_path / "quarantine").exists()


class TestSignalCleanup:
    """install_signal_cleanup: SIG_IGN honoured, idempotent, chains."""

    @pytest.fixture()
    def _restore_usr1(self):
        previous = signal.getsignal(signal.SIGUSR1)
        yield
        signal.signal(signal.SIGUSR1, previous)
        shm_lifecycle._CLEANUP_HANDLERS.pop(signal.SIGUSR1, None)

    def _register_segment(self):
        from multiprocessing import shared_memory

        name = next(shm_lifecycle.segment_names())
        seg = shared_memory.SharedMemory(create=True, size=64, name=name)
        shm_lifecycle.register(seg)
        return name

    def test_sig_ign_stays_nonfatal_but_releases(self, _restore_usr1):
        signal.signal(signal.SIGUSR1, signal.SIG_IGN)
        shm_lifecycle.install_signal_cleanup(signals=(signal.SIGUSR1,))
        name = self._register_segment()
        os.kill(os.getpid(), signal.SIGUSR1)  # must not kill this process
        assert name not in shm_lifecycle._LIVE
        assert not any(s["name"] == name for s in shm_lifecycle.list_segments())

    def test_double_install_is_idempotent(self, _restore_usr1):
        fired = []
        signal.signal(signal.SIGUSR1, lambda s, f: fired.append(s))
        shm_lifecycle.install_signal_cleanup(signals=(signal.SIGUSR1,))
        installed = signal.getsignal(signal.SIGUSR1)
        shm_lifecycle.install_signal_cleanup(signals=(signal.SIGUSR1,))
        assert signal.getsignal(signal.SIGUSR1) is installed  # not re-wrapped
        os.kill(os.getpid(), signal.SIGUSR1)
        assert fired == [signal.SIGUSR1]  # the chained handler ran once

    def test_callable_previous_handler_still_runs(self, _restore_usr1):
        fired = []
        signal.signal(signal.SIGUSR1, lambda s, f: fired.append("previous"))
        shm_lifecycle.install_signal_cleanup(signals=(signal.SIGUSR1,))
        name = self._register_segment()
        os.kill(os.getpid(), signal.SIGUSR1)
        assert fired == ["previous"]
        assert name not in shm_lifecycle._LIVE

    def test_sig_dfl_still_dies_after_cleanup(self, tmp_path):
        script = (
            "import os, signal\n"
            "from multiprocessing import shared_memory\n"
            "from repro.parallel import shm\n"
            "signal.signal(signal.SIGTERM, signal.SIG_DFL)\n"
            "shm.install_signal_cleanup(signals=(signal.SIGTERM,))\n"
            "name = next(shm.segment_names())\n"
            "shm.register(shared_memory.SharedMemory(create=True, size=64, name=name))\n"
            "print(name, flush=True)\n"
            "os.kill(os.getpid(), signal.SIGTERM)\n"
            "print('UNREACHABLE')\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            cwd=REPO_ROOT, env=env, capture_output=True, timeout=60,
        )
        assert proc.returncode == -signal.SIGTERM  # default disposition kept
        name = proc.stdout.decode().split()[0]
        assert "UNREACHABLE" not in proc.stdout.decode()
        assert not any(s["name"] == name for s in shm_lifecycle.list_segments())


class TestPresharedDescriptors:
    def test_run_session_uses_caller_owned_segments(self):
        """descriptors= skips publish and leaves the segments alive."""
        from repro.parallel.pool import _release, publish_corpus

        descriptors, handles, _sizes = publish_corpus(
            [(t.graph, t.seed) for t in TASKS]
        )
        try:
            outcome = run_session(TASKS, jobs=2, descriptors=descriptors)
            assert len(outcome.results) == len(TASKS)
            assert outcome.failed == []
            # the session must NOT have released the caller's segments
            names = {h.name for h in handles}
            live = {s["name"] for s in shm_lifecycle.list_segments()}
            assert names <= live
            # rows match a serial run bit for bit
            serial = run_session(TASKS, jobs=1)
            assert _rows_key(outcome.results) == _rows_key(serial.results)
        finally:
            _release(handles)
        _no_leaks()
