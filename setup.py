"""Legacy setup shim: this offline environment lacks the `wheel` package,
so PEP-517 editable installs fail; plain `pip install -e .` uses this."""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
)
