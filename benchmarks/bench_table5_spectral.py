"""Table V: multilevel spectral bisection on the GPU.

Paper shape: coarsening takes ~46% (regular) / ~24% (skewed) of the
partitioning time; cut ratios of HEM / mt-Metis coarsening scatter away
from 1 (misconvergence on hard instances); HEM OOMs on the largest
skewed graphs.
"""

from repro.bench.experiments import table5
from repro.bench.report import format_table

from conftest import fmt_summary, run_once, show


def test_table5_spectral_bisection(benchmark):
    rows, summary = run_once(benchmark, table5, seeds=(0, 1, 2))
    show(
        format_table(
            rows,
            [
                ("graph", "Graph", "s"),
                ("time_s", "time (sim s)", ".2e"),
                ("coarsen_pct", "%Coa", ".0f"),
                ("cut", "edge cut", ".0f"),
                ("hem_cut_ratio", "cut HEM/HEC", ".2f"),
                ("mtmetis_cut_ratio", "cut mtM/HEC", ".2f"),
            ],
            title="Table V - GPU spectral bisection (paper: %Coa 46/24; ratios scatter from 1)",
        )
        + "\n"
        + fmt_summary(summary)
    )
    # coarsening is a substantial share of partitioning time
    assert 20 < summary["coarsen_pct"]["regular"] < 80
    # every completed run produced a balanced valid cut
    assert all(r["cut"] is not None and r["cut"] >= 0 for r in rows)
    # HEM OOMs on at least one large skewed instance (paper: ic04 etc.)
    assert any(r["hem_cut_ratio"] is None for r in rows if r["group"] == "skewed")


def test_wallclock_power_iteration(benchmark):
    """Wall-clock of the SpMV-bound Fiedler refinement at one level."""
    import numpy as np

    from repro.bench.harness import corpus_graph
    from repro.parallel import gpu_space
    from repro.partition import fiedler_power_iteration

    g, _ = corpus_graph("delaunay24")
    x0 = np.random.default_rng(0).standard_normal(g.n)
    benchmark(lambda: fiedler_power_iteration(g, gpu_space(0), x0=x0, max_iters=15))
