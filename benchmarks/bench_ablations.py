"""Section IV ablations: dedup optimization, HEC variants, GOSH-HEC.

Paper numbers: the degree-based dedup sweep saves 25.7x on kron21's
construction (scale-dependent; ~1.3-3x at our 1/1000 scale); HEC beats
HEC3 by 1.13x and HEC2 by 1.21x in time with 1.26x / 1.56x fewer
levels; 99.4% / 96.7% of vertices resolve within two passes on the
first two coarsening levels; the GOSH-HEC hybrid is 1.46x faster than
GOSH with 1.18x fewer levels.
"""

from repro.bench.experiments import ablation_dedup, ablation_gosh_hec, ablation_hec_variants
from repro.bench.report import format_table, geomean

from conftest import fmt_summary, run_once, show


def test_ablation_dedup(benchmark):
    def run():
        return {g: ablation_dedup(graph=g) for g in ("kron21", "ic04", "Orkut", "HV15R")}

    out = run_once(benchmark, run)
    show(
        "Degree-based dedup optimization (construction speedup; paper: 25.7x on kron21 at paper scale)\n"
        + "\n".join(f"  {g:10s} {r['speedup']:.2f}x" for g, r in out.items())
    )
    assert out["Orkut"]["speedup"] > 1.5
    assert out["kron21"]["speedup"] > 1.1
    assert out["HV15R"]["speedup"] == 1.0  # never engages on regular meshes


def test_ablation_hec_variants(benchmark):
    rows, summary = run_once(benchmark, ablation_hec_variants)
    show(
        format_table(
            rows,
            [
                ("graph", "Graph", "s"),
                ("hec2_time_ratio", "t HEC2/HEC", ".2f"),
                ("hec3_time_ratio", "t HEC3/HEC", ".2f"),
                ("hec2_level_ratio", "l HEC2/HEC", ".2f"),
                ("hec3_level_ratio", "l HEC3/HEC", ".2f"),
                ("frac_two_passes_l1", "2-pass frac L1", ".3f"),
                ("frac_two_passes_l2", "2-pass frac L2", ".3f"),
            ],
            title="HEC vs HEC2 vs HEC3 (paper: 1.21x / 1.13x time, 1.56x / 1.26x levels)",
        )
        + "\n"
        + fmt_summary(summary)
    )
    # HEC2 (no 2-cycle collapse) coarsens slowest: more levels, more time.
    # HEC3 lands between HEC and HEC2 (at our scale its level count ties
    # HEC on the unweighted meshes; the paper at full scale measured
    # 1.26x -- see EXPERIMENTS.md)
    assert summary["hec2_level_ratio"]["all"] > 1.1
    assert summary["hec2_level_ratio"]["all"] >= summary["hec3_level_ratio"]["all"]
    assert summary["hec2_time_ratio"]["all"] > 1.1
    assert summary["hec3_time_ratio"]["all"] > 0.95
    # the pass statistic: the vast majority resolves within two passes
    fracs = [r["frac_two_passes_l1"] for r in rows if r["frac_two_passes_l1"] is not None]
    assert geomean(fracs) > 0.9


def test_ablation_gosh_hec(benchmark):
    rows, summary = run_once(benchmark, ablation_gosh_hec)
    show(
        format_table(
            rows,
            [
                ("graph", "Graph", "s"),
                ("speedup", "t GOSH/hybrid", ".2f"),
                ("level_ratio", "l GOSH/hybrid", ".2f"),
            ],
            title="GOSH-HEC hybrid vs GOSH (paper: 1.46x faster, 1.18x fewer levels)",
        )
        + "\n"
        + fmt_summary(summary)
    )
    # the hybrid is faster than GOSH overall
    assert summary["speedup"]["all"] > 1.0
