"""Table VI: multilevel bisection with FM refinement vs all baselines.

Paper shape: FM beats spectral on 19 of 20 graphs (geomean 1.29x regular
/ 4.57x skewed better); CPU-HEC and GPU-HEC feed FM equally well
(0.97/0.99); the HEC+FM partitioner is competitive with the Metis-recipe
baselines, winning clearly on the social-network instances.
"""

from repro.bench.experiments import table6
from repro.bench.report import format_table, geomean

from conftest import fmt_summary, run_once, show


def test_table6_fm_bisection(benchmark):
    rows, summary = run_once(benchmark, table6, seeds=(0, 1, 2))
    show(
        format_table(
            rows,
            [
                ("graph", "Graph", "s"),
                ("fm_gpu_cut", "FM+GPU-HEC", ".0f"),
                ("fm_cpu_ratio", "FM+CPU", ".2f"),
                ("spectral_gpu_ratio", "SpGPU", ".2f"),
                ("metis_ratio", "Mts", ".2f"),
                ("mtmetis_ratio", "mtMts", ".2f"),
                ("time_ratio_spec_vs_mtmetis", "tSp/tmtM", ".2f"),
            ],
            title="Table VI - FM-refined bisection (cut ratios vs FM+GPU-HEC; paper: spectral 1.29/4.57, mtMts 1.19/1.54)",
        )
        + "\n"
        + fmt_summary(summary)
    )
    # FM beats the spectral method overall
    assert summary["spectral_gpu_ratio"]["all"] > 1.0
    fm_beats_spectral = sum(
        1 for r in rows if r["spectral_gpu_ratio"] is not None and r["spectral_gpu_ratio"] >= 1.0
    )
    assert fm_beats_spectral >= 12  # paper: 19 of 20
    # GPU-HEC and CPU-HEC hierarchies feed FM equally well (+-10%)
    assert 0.9 < summary["fm_cpu_ratio"]["all"] < 1.15
    # HEC+FM wins clearly on the social-network stand-ins, as in the paper
    social = {"Orkut", "hollywood09", "products"}
    for r in rows:
        if r["graph"] in social and r["mtmetis_ratio"] is not None:
            assert r["mtmetis_ratio"] > 1.1, r["graph"]


def test_wallclock_fm_refinement(benchmark):
    """Wall-clock of one FM pass on a projected partition."""
    import numpy as np

    from repro.bench.harness import corpus_graph
    from repro.parallel import gpu_space
    from repro.partition import fm_refine

    g, _ = corpus_graph("citation")
    part = (np.arange(g.n) % 2).astype(np.int8)
    benchmark.pedantic(
        lambda: fm_refine(g, part, gpu_space(0), max_passes=1),
        rounds=3,
        iterations=1,
    )
