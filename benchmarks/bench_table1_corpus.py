"""Table I: the 20-graph corpus (synthetic stand-ins, paper metadata)."""

from repro.bench.report import format_table
from repro.bench.experiments import table1

from conftest import fmt_summary, run_once, show


def test_table1_corpus(benchmark):
    rows, summary = run_once(benchmark, table1)
    show(
        format_table(
            rows,
            [
                ("graph", "Graph", "s"),
                ("domain", "dom", "s"),
                ("group", "group", "s"),
                ("m", "m", "d"),
                ("n", "n", "d"),
                ("skew", "skew", ".1f"),
                ("paper_m", "paper m", "d"),
                ("paper_n", "paper n", "d"),
                ("paper_skew", "paper skew", ".1f"),
            ],
            title="Table I - evaluation corpus (stand-ins at ~1/1000 scale)",
        )
        + "\n"
        + fmt_summary(summary)
    )
    assert len(rows) == 20
    # paper property: the skew measure cleanly separates the two groups
    assert summary["split_holds"]
