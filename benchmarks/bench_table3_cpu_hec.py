"""Table III: HEC coarsening on the 32-core CPU model.

Paper shape: the ordering flips vs the GPU — hashing *beats* sorting
(0.71x / 0.77x) and SpGEMM is competitive (1.28x / 0.86x).
"""

from repro.bench.experiments import table3
from repro.bench.report import format_table

from conftest import fmt_summary, run_once, show


def test_table3_cpu_construction(benchmark):
    rows, summary = run_once(benchmark, table3)
    show(
        format_table(
            rows,
            [
                ("graph", "Graph", "s"),
                ("t_c", "t_c (sim s)", ".2e"),
                ("grco_pct", "%GrCo", ".0f"),
                ("hash_ratio", "Hash/Sort", ".2f"),
                ("spgemm_ratio", "SpGEMM/Sort", ".2f"),
            ],
            title="Table III - CPU HEC coarsening (paper: hash 0.71/0.77, spgemm 1.28/0.86)",
        )
        + "\n"
        + fmt_summary(summary)
    )
    # the sort/hash flip: hashing is consistently fastest on the CPU
    assert summary["hash_ratio"]["regular"] < 1.0
    assert summary["hash_ratio"]["skewed"] < 1.0
    # SpGEMM is competitive on the CPU (within ~1.5x of sort either way)
    assert 0.5 < summary["spgemm_ratio"]["all"] < 1.5


def test_wallclock_construction_kernel(benchmark):
    """Wall-clock of one sort-based construction on a real mapping."""
    from repro.bench.harness import corpus_graph
    from repro.coarsen import hec_parallel
    from repro.construct import construct_sort
    from repro.parallel import cpu_space, gpu_space

    g, _ = corpus_graph("nlpkkt160")
    mp = hec_parallel(g, gpu_space(0))
    benchmark(lambda: construct_sort(g, mp, cpu_space(0)))
