"""Table II: HEC coarsening on the GPU model — construction strategies.

Paper shape: sort-based dedup wins on the GPU; hashing costs 1.45x
(regular) / 1.72x (skewed) of sort, SpGEMM 2.2x / 4.4x; construction is
roughly half of coarsening time (46% / 58%).
"""

from repro.bench.experiments import table2
from repro.bench.report import format_table, geomean

from conftest import fmt_summary, run_once, show


def test_table2_gpu_construction(benchmark):
    rows, summary = run_once(benchmark, table2)
    show(
        format_table(
            rows,
            [
                ("graph", "Graph", "s"),
                ("t_c", "t_c (sim s)", ".2e"),
                ("grco_pct", "%GrCo", ".0f"),
                ("hash_ratio", "Hash/Sort", ".2f"),
                ("spgemm_ratio", "SpGEMM/Sort", ".2f"),
                ("levels", "l", "d"),
            ],
            title="Table II - GPU HEC coarsening (paper: %GrCo 46/58, hash 1.45/1.72, spgemm 2.21/4.41)",
        )
        + "\n"
        + fmt_summary(summary)
    )
    # who wins: sort beats hashing on the GPU on the regular group and
    # stays competitive overall; SpGEMM loses clearly, worse on skewed
    assert summary["hash_ratio"]["regular"] > 1.2
    assert summary["hash_ratio"]["all"] > 1.0
    assert summary["spgemm_ratio"]["regular"] > 2.0
    assert summary["spgemm_ratio"]["skewed"] > summary["spgemm_ratio"]["regular"]
    # construction dominates mapping, more so on skewed graphs
    assert 40 < summary["grco_pct"]["regular"] < 80
    assert summary["grco_pct"]["skewed"] > summary["grco_pct"]["regular"]


def test_wallclock_hec_mapping_kernel(benchmark):
    """Real wall-clock of the HEC mapping kernel on the largest graph."""
    from repro.bench.harness import corpus_graph
    from repro.coarsen import hec_parallel
    from repro.parallel import gpu_space

    g, _ = corpus_graph("rgg24")
    benchmark(lambda: hec_parallel(g, gpu_space(0)))
