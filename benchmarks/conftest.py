"""Shared helpers for the per-table benchmark suites.

Every ``bench_*`` module regenerates one table or figure of the paper:
it runs the experiment once under ``benchmark.pedantic`` (wall-clock of
the full vectorised pipeline), prints the reproduced table next to the
paper's numbers, and asserts the paper's *shape* claims (who wins, by
roughly what factor).  Simulated times come from the machine cost
models; wall times measure this library's NumPy kernels.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session", autouse=True)
def _graph_cache_report(request):
    """Print graph-cache counters once the benchmark session ends.

    A suite that silently regenerated corpus graphs (corrupt cache,
    changed generator parameters) pays seconds of hidden work per graph;
    surfacing hits/misses/regenerations next to the timings keeps the
    wall-clocks honest.
    """
    yield
    from repro.bench.harness import cache_stats
    from repro.bench.report import format_cache_stats

    capmanager = request.config.pluginmanager.getplugin("capturemanager")
    with capmanager.global_and_fixture_disabled():
        print("\n" + format_cache_stats(cache_stats()) + "\n")


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark fixture and return its
    result (full experiments are too heavy for multi-round timing)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def show(text: str) -> None:
    """Print with a separator so tables stand out in pytest -s output."""
    print("\n" + text + "\n")


def fmt_summary(summary: dict, digits: int = 2) -> str:
    lines = []
    for key, groups in summary.items():
        if isinstance(groups, dict):
            parts = ", ".join(
                f"{g}={v:.{digits}f}" if isinstance(v, float) else f"{g}={v}"
                for g, v in groups.items()
            )
            lines.append(f"  {key}: {parts}")
        else:
            lines.append(f"  {key}: {groups}")
    return "\n".join(lines)
