"""Table IV: coarsening-method comparison on the GPU.

Paper shape: HEC is fastest overall (HEM 1.78/2.50x, mtMetis 1.73/2.40x,
GOSH 1.97/1.60x, MIS2 1.11/1.70x slower); MIS2 needs the fewest levels,
matchings the most; HEC's coarsening ratio far exceeds mt-Metis's ~1.8;
HEM / two-hop hit OOM on large skewed instances.
"""

from repro.bench.experiments import table4
from repro.bench.report import format_table

from conftest import fmt_summary, run_once, show


def test_table4_method_comparison(benchmark):
    rows, summary = run_once(benchmark, table4)
    show(
        format_table(
            rows,
            [
                ("graph", "Graph", "s"),
                ("hem_ratio", "HEM", ".2f"),
                ("mtmetis_ratio", "mtMetis", ".2f"),
                ("gosh_ratio", "GOSH", ".2f"),
                ("mis2_ratio", "MIS2", ".2f"),
                ("hec_levels", "l:HEC", "d"),
                ("hem_levels", "l:HEM", "d"),
                ("mtmetis_levels", "l:mtM", "d"),
                ("gosh_levels", "l:GOSH", "d"),
                ("mis2_levels", "l:MIS2", "d"),
                ("hec_cr", "cr:HEC", ".2f"),
                ("mtmetis_cr", "cr:mtM", ".2f"),
            ],
            title="Table IV - coarsening methods vs HEC on the GPU (time ratios; OOM = simulated 11GB)",
        )
        + "\n"
        + fmt_summary(summary)
    )
    ok = [r for r in rows if r["hem_ratio"] is not None]
    # HEC is the fastest strategy across the board
    for key in ("hem_ratio", "mtmetis_ratio", "gosh_ratio", "mis2_ratio"):
        assert summary[key]["all"] > 1.0, key
    # level ordering: MIS2 coarsest, matchings deepest
    for r in rows:
        if r["mis2_levels"] is not None and r["hec_levels"] is not None:
            assert r["mis2_levels"] <= r["hec_levels"] + 1
        if r["hem_levels"] is not None and r["hec_levels"] is not None:
            assert r["hem_levels"] >= r["hec_levels"]
    # matching-based coarsening ratio is capped at 2; HEC exceeds it
    assert summary["mtmetis_cr"]["all"] < 2.0
    assert summary["hec_cr"]["all"] > 2.5
    # at least one skewed instance drives HEM/two-hop out of memory
    assert any(r["hem_ratio"] is None for r in rows if r["group"] == "skewed")
