"""Figure 3: HEC performance rates, GPU/CPU speedup, weak scaling.

Paper shape: (left) GPU rates fall in a narrow band with no outliers;
(center) GPU beats the 32-core CPU by ~2.4x geomean (transfer excluded);
(right) rates grow with size, kron trails rgg/delaunay.
"""

from repro.bench.experiments import fig3_center, fig3_left, fig3_right
from repro.bench.report import format_table, geomean

from conftest import fmt_summary, run_once, show


def test_fig3_left_gpu_rates(benchmark):
    rows, summary = run_once(benchmark, fig3_left)
    show(
        format_table(
            rows,
            [
                ("graph", "Graph", "s"),
                ("size", "2m+n", "d"),
                ("rate", "rate (elem/s)", ".3e"),
            ],
            title="Fig 3 (left) - GPU HEC performance rate",
        )
        + "\n"
        + fmt_summary(summary)
    )
    # "the performance rates for the graphs fall within a relatively
    # narrow band": max/min within ~one order of magnitude
    assert summary["band"] < 12.0


def test_fig3_center_speedup(benchmark):
    rows, summary = run_once(benchmark, fig3_center)
    show(
        format_table(
            rows,
            [("graph", "Graph", "s"), ("speedup", "GPU/CPU", ".2f")],
            title="Fig 3 (center) - GPU speedup over 32-core CPU (paper geomean 2.4x)",
        )
        + "\n"
        + fmt_summary(summary)
    )
    assert 1.5 < summary["speedup"]["all"] < 3.5
    assert all(r["speedup"] > 1.0 for r in rows)  # GPU wins everywhere


def test_fig3_right_weak_scaling(benchmark):
    rows, summary = run_once(benchmark, fig3_right)
    show(
        format_table(
            rows,
            [
                ("graph", "Graph", "s"),
                ("family", "family", "s"),
                ("scale", "scale", "d"),
                ("rate", "rate (elem/s)", ".3e"),
            ],
            title="Fig 3 (right) - weak scaling (rgg / delaunay / kron)",
        )
        + "\n"
        + fmt_summary(summary)
    )
    # regular families outperform kron (load balance in adjacency steps)
    assert summary["kron_below_regular"]
    # performance grows with graph size on the GPU
    assert sum(summary["rates_grow"].values()) >= 2
